#include "service/metrics_text.hpp"

#include <cinttypes>
#include <cstdint>
#include <cstdio>

namespace dsteiner::service {

namespace {

void append_line(std::string& out, std::string_view text) {
  out.append(text);
  out.push_back('\n');
}

void append_metric(std::string& out, std::string_view prefix,
                   std::string_view name, std::string_view help,
                   std::string_view type, std::uint64_t value) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer), "# HELP %.*s_%.*s %.*s",
                static_cast<int>(prefix.size()), prefix.data(),
                static_cast<int>(name.size()), name.data(),
                static_cast<int>(help.size()), help.data());
  append_line(out, buffer);
  std::snprintf(buffer, sizeof(buffer), "# TYPE %.*s_%.*s %.*s",
                static_cast<int>(prefix.size()), prefix.data(),
                static_cast<int>(name.size()), name.data(),
                static_cast<int>(type.size()), type.data());
  append_line(out, buffer);
  std::snprintf(buffer, sizeof(buffer), "%.*s_%.*s %" PRIu64,
                static_cast<int>(prefix.size()), prefix.data(),
                static_cast<int>(name.size()), name.data(), value);
  append_line(out, buffer);
}

void append_counter(std::string& out, std::string_view prefix,
                    std::string_view name, std::string_view help,
                    std::uint64_t value) {
  append_metric(out, prefix, name, help, "counter", value);
}

void append_gauge(std::string& out, std::string_view prefix,
                  std::string_view name, std::string_view help,
                  std::uint64_t value) {
  append_metric(out, prefix, name, help, "gauge", value);
}

/// A cumulative counter whose value is a float (seconds totals).
void append_counter_seconds(std::string& out, std::string_view prefix,
                            std::string_view name, std::string_view help,
                            double value) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer), "# HELP %.*s_%.*s %.*s",
                static_cast<int>(prefix.size()), prefix.data(),
                static_cast<int>(name.size()), name.data(),
                static_cast<int>(help.size()), help.data());
  append_line(out, buffer);
  std::snprintf(buffer, sizeof(buffer), "# TYPE %.*s_%.*s counter",
                static_cast<int>(prefix.size()), prefix.data(),
                static_cast<int>(name.size()), name.data());
  append_line(out, buffer);
  std::snprintf(buffer, sizeof(buffer), "%.*s_%.*s %.9g",
                static_cast<int>(prefix.size()), prefix.data(),
                static_cast<int>(name.size()), name.data(), value);
  append_line(out, buffer);
}

/// One counter family with a `priority` label per class (one HELP/TYPE
/// header, k_priority_classes series).
void append_priority_counter(
    std::string& out, std::string_view prefix, std::string_view name,
    std::string_view help,
    const std::array<std::uint64_t, k_priority_classes>& values) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer), "# HELP %.*s_%.*s %.*s",
                static_cast<int>(prefix.size()), prefix.data(),
                static_cast<int>(name.size()), name.data(),
                static_cast<int>(help.size()), help.data());
  append_line(out, buffer);
  std::snprintf(buffer, sizeof(buffer), "# TYPE %.*s_%.*s counter",
                static_cast<int>(prefix.size()), prefix.data(),
                static_cast<int>(name.size()), name.data());
  append_line(out, buffer);
  for (std::size_t p = 0; p < k_priority_classes; ++p) {
    std::snprintf(buffer, sizeof(buffer),
                  "%.*s_%.*s{priority=\"%s\"} %" PRIu64,
                  static_cast<int>(prefix.size()), prefix.data(),
                  static_cast<int>(name.size()), name.data(),
                  to_string(static_cast<priority_class>(p)), values[p]);
    append_line(out, buffer);
  }
}

/// A gauge whose value is a float (ratios, seconds, burn rates).
void append_gauge_value(std::string& out, std::string_view prefix,
                        std::string_view name, std::string_view help,
                        double value) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer), "# HELP %.*s_%.*s %.*s",
                static_cast<int>(prefix.size()), prefix.data(),
                static_cast<int>(name.size()), name.data(),
                static_cast<int>(help.size()), help.data());
  append_line(out, buffer);
  std::snprintf(buffer, sizeof(buffer), "# TYPE %.*s_%.*s gauge",
                static_cast<int>(prefix.size()), prefix.data(),
                static_cast<int>(name.size()), name.data());
  append_line(out, buffer);
  std::snprintf(buffer, sizeof(buffer), "%.*s_%.*s %.9g",
                static_cast<int>(prefix.size()), prefix.data(),
                static_cast<int>(name.size()), name.data(), value);
  append_line(out, buffer);
}

[[nodiscard]] const char* slo_class_name(std::size_t p) noexcept {
  return p < k_priority_classes ? to_string(static_cast<priority_class>(p))
                                : "other";
}

/// The SLO families: per-class objectives and lifetime good/bad counters,
/// plus the short/long-window burn-rate gauges. Shared between /metrics and
/// the standalone /slo route so both expose identical series.
void append_slo_block(std::string& out, std::string_view prefix,
                      const obs::slo_snapshot& slo) {
  char buffer[256];
  const int pn = static_cast<int>(prefix.size());
  const char* pd = prefix.data();

  append_gauge_value(out, prefix, "slo_error_budget",
                     "Allowed bad-event fraction over the long window",
                     slo.error_budget);

  const auto header = [&](const char* name, const char* help,
                          const char* type) {
    std::snprintf(buffer, sizeof(buffer), "# HELP %.*s_%s %s", pn, pd, name,
                  help);
    append_line(out, buffer);
    std::snprintf(buffer, sizeof(buffer), "# TYPE %.*s_%s %s", pn, pd, name,
                  type);
    append_line(out, buffer);
  };

  header("slo_objective_seconds", "Latency objective per priority class",
         "gauge");
  for (std::size_t p = 0; p < slo.classes.size(); ++p) {
    std::snprintf(buffer, sizeof(buffer),
                  "%.*s_slo_objective_seconds{priority=\"%s\"} %.9g", pn, pd,
                  slo_class_name(p), slo.classes[p].objective_seconds);
    append_line(out, buffer);
  }

  header("slo_good_total", "Completions within the class objective",
         "counter");
  for (std::size_t p = 0; p < slo.classes.size(); ++p) {
    std::snprintf(buffer, sizeof(buffer),
                  "%.*s_slo_good_total{priority=\"%s\"} %" PRIu64, pn, pd,
                  slo_class_name(p), slo.classes[p].good_total);
    append_line(out, buffer);
  }

  header("slo_bad_total", "Completions past the class objective", "counter");
  for (std::size_t p = 0; p < slo.classes.size(); ++p) {
    std::snprintf(buffer, sizeof(buffer),
                  "%.*s_slo_bad_total{priority=\"%s\"} %" PRIu64, pn, pd,
                  slo_class_name(p), slo.classes[p].bad_total);
    append_line(out, buffer);
  }

  header("slo_burn_rate",
         "Error-budget burn rate (1.0 = budget spent exactly at the "
         "sustainable rate) per priority class and window",
         "gauge");
  for (std::size_t p = 0; p < slo.classes.size(); ++p) {
    std::snprintf(buffer, sizeof(buffer),
                  "%.*s_slo_burn_rate{priority=\"%s\",window=\"short\"} %.9g",
                  pn, pd, slo_class_name(p), slo.classes[p].burn_rate_short);
    append_line(out, buffer);
    std::snprintf(buffer, sizeof(buffer),
                  "%.*s_slo_burn_rate{priority=\"%s\",window=\"long\"} %.9g",
                  pn, pd, slo_class_name(p), slo.classes[p].burn_rate_long);
    append_line(out, buffer);
  }

  header("slo_window_queries",
         "Completions scored inside the window, per priority class", "gauge");
  for (std::size_t p = 0; p < slo.classes.size(); ++p) {
    const auto& c = slo.classes[p];
    std::snprintf(buffer, sizeof(buffer),
                  "%.*s_slo_window_queries{priority=\"%s\",window=\"short\"} "
                  "%" PRIu64,
                  pn, pd, slo_class_name(p), c.short_good + c.short_bad);
    append_line(out, buffer);
    std::snprintf(buffer, sizeof(buffer),
                  "%.*s_slo_window_queries{priority=\"%s\",window=\"long\"} "
                  "%" PRIu64,
                  pn, pd, slo_class_name(p), c.long_good + c.long_bad);
    append_line(out, buffer);
  }
}

void append_histogram(std::string& out, std::string_view prefix,
                      std::string_view name, std::string_view help,
                      const latency_histogram::snapshot_data& hist) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer), "# HELP %.*s_%.*s %.*s",
                static_cast<int>(prefix.size()), prefix.data(),
                static_cast<int>(name.size()), name.data(),
                static_cast<int>(help.size()), help.data());
  append_line(out, buffer);
  std::snprintf(buffer, sizeof(buffer), "# TYPE %.*s_%.*s histogram",
                static_cast<int>(prefix.size()), prefix.data(),
                static_cast<int>(name.size()), name.data());
  append_line(out, buffer);

  // Prometheus buckets are cumulative: every finite log2 bound gets its own
  // series, then the mandatory le="+Inf" series. +Inf and _count both use
  // the summed buckets (not the separately-updated count atomic) so a racy
  // snapshot can never violate the +Inf == _count exposition invariant.
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < latency_histogram::k_buckets; ++i) {
    cumulative += hist.buckets[i];
    std::snprintf(buffer, sizeof(buffer),
                  "%.*s_%.*s_bucket{le=\"%.9g\"} %" PRIu64,
                  static_cast<int>(prefix.size()), prefix.data(),
                  static_cast<int>(name.size()), name.data(),
                  latency_histogram::bucket_upper_seconds(i), cumulative);
    append_line(out, buffer);
  }
  std::snprintf(buffer, sizeof(buffer),
                "%.*s_%.*s_bucket{le=\"+Inf\"} %" PRIu64,
                static_cast<int>(prefix.size()), prefix.data(),
                static_cast<int>(name.size()), name.data(), cumulative);
  append_line(out, buffer);
  std::snprintf(buffer, sizeof(buffer), "%.*s_%.*s_sum %.9g",
                static_cast<int>(prefix.size()), prefix.data(),
                static_cast<int>(name.size()), name.data(), hist.total_seconds);
  append_line(out, buffer);
  std::snprintf(buffer, sizeof(buffer), "%.*s_%.*s_count %" PRIu64,
                static_cast<int>(prefix.size()), prefix.data(),
                static_cast<int>(name.size()), name.data(), cumulative);
  append_line(out, buffer);
}

/// append_histogram with every bucket bound and the sum multiplied by
/// `scale`: the latency_histogram's log2 grid was laid out for seconds, so
/// byte-valued series record samples as bytes x 1/scale and re-scale the
/// exposition bounds back to bytes here.
void append_histogram_scaled(std::string& out, std::string_view prefix,
                             std::string_view name, std::string_view help,
                             const latency_histogram::snapshot_data& hist,
                             double scale) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer), "# HELP %.*s_%.*s %.*s",
                static_cast<int>(prefix.size()), prefix.data(),
                static_cast<int>(name.size()), name.data(),
                static_cast<int>(help.size()), help.data());
  append_line(out, buffer);
  std::snprintf(buffer, sizeof(buffer), "# TYPE %.*s_%.*s histogram",
                static_cast<int>(prefix.size()), prefix.data(),
                static_cast<int>(name.size()), name.data());
  append_line(out, buffer);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < latency_histogram::k_buckets; ++i) {
    cumulative += hist.buckets[i];
    std::snprintf(buffer, sizeof(buffer),
                  "%.*s_%.*s_bucket{le=\"%.9g\"} %" PRIu64,
                  static_cast<int>(prefix.size()), prefix.data(),
                  static_cast<int>(name.size()), name.data(),
                  latency_histogram::bucket_upper_seconds(i) * scale,
                  cumulative);
    append_line(out, buffer);
  }
  std::snprintf(buffer, sizeof(buffer),
                "%.*s_%.*s_bucket{le=\"+Inf\"} %" PRIu64,
                static_cast<int>(prefix.size()), prefix.data(),
                static_cast<int>(name.size()), name.data(), cumulative);
  append_line(out, buffer);
  std::snprintf(buffer, sizeof(buffer), "%.*s_%.*s_sum %.9g",
                static_cast<int>(prefix.size()), prefix.data(),
                static_cast<int>(name.size()), name.data(),
                hist.total_seconds * scale);
  append_line(out, buffer);
  std::snprintf(buffer, sizeof(buffer), "%.*s_%.*s_count %" PRIu64,
                static_cast<int>(prefix.size()), prefix.data(),
                static_cast<int>(name.size()), name.data(), cumulative);
  append_line(out, buffer);
}

}  // namespace

std::string render_metrics_text(const service_snapshot& snap,
                                std::string_view prefix) {
  const service_stats& s = snap.stats;
  std::string out;
  out.reserve(8192);

  append_counter(out, prefix, "queries_total", "Queries executed", s.queries);
  append_counter(out, prefix, "cold_solves_total", "Full Alg. 3 solves",
                 s.cold_solves);
  append_counter(out, prefix, "warm_solves_total",
                 "Warm-start repairs (seed and edge deltas)", s.warm_solves);
  append_counter(out, prefix, "edge_warm_solves_total",
                 "Warm-start repairs that crossed graph epochs",
                 s.edge_warm_solves);
  append_counter(out, prefix, "warm_fallbacks_total",
                 "Warm attempts that fell back to cold", s.warm_fallbacks);
  append_counter(out, prefix, "cache_hits_total",
                 "Queries served from the result cache", s.cache_hits);
  append_counter(out, prefix, "stale_hits_total",
                 "Queries served from an older live epoch", s.stale_hits);
  append_counter(out, prefix, "coalesced_total",
                 "Queries that waited on an identical in-flight solve",
                 s.coalesced);
  append_counter(out, prefix, "epoch_advances_total",
                 "Graph epochs derived by edge edits", s.epoch_advances);

  append_counter(out, prefix, "cancelled_total",
                 "Requests stopped by cancellation (queued or mid-solve)",
                 s.cancelled);
  append_counter(out, prefix, "deadline_rejected_total",
                 "Requests rejected at admission as deadline-unmeetable",
                 s.deadline_rejected);
  append_counter(out, prefix, "deadline_expired_total",
                 "Requests whose deadline passed while queued or solving",
                 s.deadline_expired);
  append_counter(out, prefix, "stale_refreshes_total",
                 "Background refreshes enqueued after stale hits",
                 s.stale_refreshes);
  append_counter(out, prefix, "stale_refreshes_deduped_total",
                 "Stale-hit refreshes suppressed by the in-flight token",
                 s.stale_refreshes_deduped);
  append_counter(out, prefix, "leader_abandoned_total",
                 "Single-flight solves stopped after every rider walked away",
                 s.leader_abandoned);

  append_counter(out, prefix, "fragment_assisted_solves_total",
                 "Cold solves pre-seeded from the shared SSSP fragment store",
                 s.fragment_assisted);
  append_counter(out, prefix, "fragment_hits_total",
                 "Fragments borrowed into solves", s.fragment_hits);
  append_counter(out, prefix, "fragment_misses_total",
                 "Fragment borrow probes that found nothing",
                 s.fragments.misses);
  append_counter(out, prefix, "fragment_published_total",
                 "Per-seed fragments published by finished solves",
                 s.fragments.published);
  append_counter(out, prefix, "fragment_evictions_total",
                 "Fragments evicted by the memory budget",
                 s.fragments.evictions);
  append_counter(out, prefix, "fragment_retired_total",
                 "Fragments purged by epoch retirement", s.fragments.retired);
  append_gauge(out, prefix, "fragment_store_bytes",
               "Fragment store occupancy in bytes", s.fragments.bytes_in_use);
  append_gauge(out, prefix, "fragment_store_entries",
               "Fragments currently stored", s.fragments.fragments);
  append_counter(out, prefix, "preseeded_vertices_total",
                 "Vertex labels adopted from fragments before relaxation",
                 s.preseeded_vertices);
  append_counter(out, prefix, "oracle_pruned_visitors_total",
                 "Phase-1 visitors dropped by landmark upper bounds (the "
                 "prune-rate numerator; divide by engine visitors)",
                 s.oracle_pruned_visitors);
  append_counter(out, prefix, "oracle_builds_total",
                 "Landmark table (re)builds", s.oracle_builds);
  append_counter(out, prefix, "bucketed_solves_total",
                 "Cold solves that ran phase 1 as bucketed delta-stepping "
                 "(relaxed-determinism requests)",
                 s.bucketed_solves);
  append_counter(out, prefix, "growth_buckets_processed_total",
                 "Delta-stepping buckets drained by bucketed phase-1 runs",
                 s.growth_buckets_processed);
  append_counter(out, prefix, "growth_tiles_emitted_total",
                 "Edge tiles emitted for high-degree vertices under bucketed "
                 "growth",
                 s.growth_tiles);
  append_counter(out, prefix, "growth_bucket_pruned_total",
                 "Visitors dropped when the landmark bound closed all "
                 "remaining buckets",
                 s.growth_bucket_pruned);
  append_gauge(out, prefix, "growth_last_bucket_delta",
               "Resolved delta-stepping bucket width of the most recent "
               "bucketed solve",
               s.growth_last_delta);
  append_gauge(out, prefix, "growth_last_tile_threshold",
               "Resolved edge-tiling degree threshold of the most recent "
               "bucketed solve",
               s.growth_last_tile_threshold);
  append_counter(out, prefix, "net_solves_total",
                 "Cold solves executed on the distributed comm_backend mesh",
                 s.distributed_solves);
  append_counter(out, prefix, "net_bytes_sent_total",
                 "Measured wire bytes sent by distributed solves, all ranks "
                 "(headers, markers and votes included)",
                 s.net_bytes_sent);
  append_counter(out, prefix, "net_bytes_modelled_total",
                 "Perf-model payload-byte prediction for the same solves "
                 "(records x record size, no framing)",
                 s.net_bytes_modelled);
  append_counter(out, prefix, "net_frames_sent_total",
                 "Typed frames put on the mesh by distributed solves",
                 s.net_frames_sent);
  append_counter(out, prefix, "net_supersteps_total",
                 "BSP supersteps executed by distributed solves (mesh-wide, "
                 "not per-rank)",
                 s.net_supersteps);
  append_counter(out, prefix, "net_vote_rounds_total",
                 "Two-phase termination vote rounds (confirm rounds included)",
                 s.net_vote_rounds);
  append_counter(out, prefix, "net_ghost_labels_total",
                 "Boundary vertex labels synchronized between ranks",
                 s.net_ghost_labels);
  append_counter(out, prefix, "cluster_telemetry_samples_total",
                 "Per-rank, per-superstep telemetry frames merged on rank 0",
                 s.cluster_telemetry_samples);
  append_counter(out, prefix, "cluster_supersteps_total",
                 "Superstep groups attributed by the straggler report",
                 s.cluster_supersteps);
  append_counter(out, prefix, "cluster_straggler_supersteps_total",
                 "Attributed supersteps whose max/median compute skew "
                 "reached 2x",
                 s.cluster_straggler_supersteps);
  append_counter(out, prefix, "bound_sharpened_admissions_total",
                 "Admission cost estimates scaled by oracle seed spread",
                 s.bound_sharpened);
  append_priority_counter(out, prefix, "requests_admitted_total",
                          "Requests admitted, by priority class",
                          s.admitted_by_priority);
  append_priority_counter(out, prefix, "requests_shed_total",
                          "Requests shed (rejected, displaced or expired in "
                          "queue), by priority class",
                          s.shed_by_priority);

  append_counter(out, prefix, "cache_lookup_hits_total",
                 "Result-cache lookup hits", s.cache.hits);
  append_counter(out, prefix, "cache_lookup_misses_total",
                 "Result-cache lookup misses", s.cache.misses);
  append_counter(out, prefix, "cache_insertions_total",
                 "Result-cache insertions", s.cache.insertions);
  append_counter(out, prefix, "cache_evictions_total",
                 "Result-cache capacity evictions", s.cache.evictions);
  append_counter(out, prefix, "cache_retired_total",
                 "Result-cache entries purged by epoch retirement",
                 s.cache.retired);
  append_gauge(out, prefix, "cache_entries", "Result-cache occupancy",
               s.cache.entries);

  append_counter(out, prefix, "executor_submitted_total",
                 "Tasks admitted to the worker pool", s.exec.submitted);
  append_counter(out, prefix, "executor_executed_total", "Tasks executed",
                 s.exec.executed);
  append_counter(out, prefix, "executor_rejected_total",
                 "try_submit load-shed refusals", s.exec.rejected);
  append_counter(out, prefix, "executor_expired_total",
                 "Queued tasks dropped past their deadline", s.exec.expired);
  append_counter(out, prefix, "executor_displaced_total",
                 "Queued tasks shed for higher-priority arrivals",
                 s.exec.displaced);
  append_counter(out, prefix, "executor_tasks_failed_total",
                 "Tasks that let an exception escape", s.exec.tasks_failed);
  append_counter(out, prefix, "executor_promoted_total",
                 "Queued tasks moved up a priority level by aging",
                 s.exec.promoted);
  append_counter_seconds(out, prefix, "executor_queue_wait_seconds_total",
                         "Cumulative queue wait of executed tasks",
                         s.exec.total_queue_wait_seconds);
  append_counter_seconds(out, prefix, "executor_exec_seconds_total",
                         "Cumulative wall seconds spent running tasks",
                         s.exec.total_exec_seconds);
  append_gauge(out, prefix, "executor_queue_depth",
               "Tasks currently queued for a worker", s.exec.queue_depth);
  append_gauge(out, prefix, "executor_peak_queue_depth",
               "Deepest admission queue observed", s.exec.peak_queue_depth);
  append_counter(out, prefix, "slow_queries_total",
                 "Queries retained in the slow-query log (threshold or SLO "
                 "violation)",
                 s.slow_queries);
  append_counter(out, prefix, "sampled_traces_total",
                 "Untraced queries promoted to a full trace by head sampling",
                 s.sampled_traces);
  append_counter(out, prefix, "slo_violations_total",
                 "Completions past their priority class latency objective",
                 s.slo_violations);
  append_counter(out, prefix, "model_priced_admissions_total",
                 "Admission estimates priced by the learned cost model",
                 s.model_admissions);

  append_gauge(out, prefix, "cost_model_samples",
               "Solves the admission cost model has trained on",
               snap.cost_model.samples);
  append_gauge(out, prefix, "cost_model_ready",
               "1 once the learned model prices admissions",
               snap.cost_model.ready ? 1 : 0);
  append_gauge_value(out, prefix, "cost_model_abs_error_ema_seconds",
                     "EMA of the model's absolute training residual",
                     snap.cost_model.abs_error_ema_seconds);

  append_slo_block(out, prefix, snap.slo);

  append_histogram(out, prefix, "queue_wait_seconds",
                   "Admission-to-pickup wait, all queries", snap.queue_wait);
  append_histogram(out, prefix, "cold_solve_seconds",
                   "Solver time on the cold path", snap.cold_solve);
  append_histogram(out, prefix, "warm_solve_seconds",
                   "Solver time on the warm-start path", snap.warm_solve);
  append_histogram(out, prefix, "cache_hit_seconds",
                   "End-to-end latency of cache hits", snap.cache_hit_total);
  append_histogram(out, prefix, "query_seconds",
                   "End-to-end latency, all paths", snap.total);
  append_histogram(out, prefix, "modelled_solve_seconds",
                   "Cost-model predicted solve time for executed solves",
                   snap.modelled_solve);
  append_histogram(out, prefix, "model_abs_error_seconds",
                   "Absolute wall-vs-model solve-time residual",
                   snap.model_abs_error);
  append_histogram(out, prefix, "estimate_error_seconds",
                   "Absolute end-to-end vs admission-estimate residual",
                   snap.estimate_error);
  append_histogram(out, prefix, "estimate_error_model_seconds",
                   "Admission residual of the learned cost model (recorded "
                   "only when the model priced the admission)",
                   snap.estimate_error_model);
  append_histogram(out, prefix, "estimate_error_baseline_seconds",
                   "Admission residual the global-p50 baseline would have "
                   "had on the same queries",
                   snap.estimate_error_baseline);
  append_histogram_scaled(out, prefix, "comm_bytes_modelled",
                          "Perf-model predicted payload bytes per distributed "
                          "superstep",
                          snap.comm_bytes_modelled, 1e6);
  append_histogram_scaled(out, prefix, "comm_bytes_measured",
                          "Measured wire bytes per distributed superstep "
                          "(always >= the modelled series; the gap is framing "
                          "overhead)",
                          snap.comm_bytes_measured, 1e6);
  append_histogram(out, prefix, "cluster_superstep_seconds",
                   "Wall seconds per rank per superstep (compute + "
                   "send-flush + recv-wait + vote)",
                   snap.cluster_superstep_seconds);
  append_histogram(out, prefix, "cluster_comm_wait_seconds",
                   "Communication share of each rank-superstep sample "
                   "(send-flush + recv-wait + vote)",
                   snap.cluster_comm_wait_seconds);
  return out;
}

std::string render_slo_text(const service_snapshot& snap,
                            std::string_view prefix) {
  std::string out;
  out.reserve(2048);
  append_slo_block(out, prefix, snap.slo);
  return out;
}

}  // namespace dsteiner::service
