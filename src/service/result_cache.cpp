#include "service/result_cache.hpp"

#include <algorithm>

#include "util/hash.hpp"

namespace dsteiner::service {

std::size_t cache_key_hash::operator()(const cache_key& key) const noexcept {
  std::uint64_t h = util::hash_combine(key.graph_fingerprint, key.seed_hash);
  h = util::hash_combine(h, key.config_hash);
  return static_cast<std::size_t>(h);
}

result_cache::result_cache(config cfg) : config_(cfg) {
  config_.shards = std::max<std::size_t>(1, config_.shards);
  config_.capacity = std::max<std::size_t>(1, config_.capacity);
  config_.shards = std::min(config_.shards, config_.capacity);
  config_.eviction_window = std::max<std::size_t>(1, config_.eviction_window);
  per_shard_capacity_ =
      (config_.capacity + config_.shards - 1) / config_.shards;
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<shard>());
  }
}

result_cache::shard& result_cache::shard_for(const cache_key& key) {
  const std::size_t h = cache_key_hash{}(key);
  // Mix again so shard choice is independent of the index's bucket choice.
  return *shards_[util::mix64(h) % shards_.size()];
}

const result_cache::shard& result_cache::shard_for(const cache_key& key) const {
  return const_cast<result_cache*>(this)->shard_for(key);
}

bool result_cache::peek(
    const cache_key& key,
    std::span<const graph::vertex_id> canonical_seeds) const {
  const shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.index.find(key);
  if (it == s.index.end()) return false;
  const entry_ptr& entry = it->second->second;
  return std::equal(entry->seeds.begin(), entry->seeds.end(),
                    canonical_seeds.begin(), canonical_seeds.end());
}

result_cache::entry_ptr result_cache::find(
    const cache_key& key, std::span<const graph::vertex_id> canonical_seeds,
    bool count_miss) {
  shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.index.find(key);
  if (it == s.index.end()) {
    if (count_miss) ++s.counters.misses;
    return nullptr;
  }
  const entry_ptr& entry = it->second->second;
  if (!std::equal(entry->seeds.begin(), entry->seeds.end(),
                  canonical_seeds.begin(), canonical_seeds.end())) {
    if (count_miss) ++s.counters.misses;  // hash collision: treat as a miss
    return nullptr;
  }
  s.lru.splice(s.lru.begin(), s.lru, it->second);
  ++s.counters.hits;
  return entry;
}

void result_cache::insert(const cache_key& key, entry_ptr entry) {
  shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.index.find(key);
  if (it != s.index.end()) {
    it->second->second = std::move(entry);
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return;
  }
  s.lru.emplace_front(key, std::move(entry));
  s.min_epoch = std::min(s.min_epoch, s.lru.front().second->epoch_id);
  s.index.emplace(key, s.lru.begin());
  ++s.counters.insertions;
  if (s.lru.size() > per_shard_capacity_) {
    // Epoch-first victim selection: an entry from a pre-live epoch is dead
    // weight the moment its epoch stops being current — retire the cheapest
    // stale entry shard-wide before any live-epoch entry is considered.
    // This also guarantees the sole live-epoch entry survives as long as
    // stale ones remain. The min_epoch bound skips the shard walk outright
    // in the all-live steady state.
    const std::uint64_t live = live_epoch_.load(std::memory_order_relaxed);
    auto victim = s.lru.end();
    bool stale_victim = false;
    if (s.min_epoch < live) {
      std::uint64_t min_seen = s.lru.front().second->epoch_id;
      for (auto probe = std::prev(s.lru.end()); probe != s.lru.begin();
           --probe) {
        min_seen = std::min(min_seen, probe->second->epoch_id);
        if (probe->second->epoch_id >= live) continue;
        if (victim == s.lru.end() || probe->second->solve_cost_seconds <
                                         victim->second->solve_cost_seconds) {
          victim = probe;
        }
      }
      stale_victim = victim != s.lru.end();
      // No stale entry left (e.g. all were evicted earlier): raise the bound
      // so future inserts skip this scan until an older epoch reappears.
      if (!stale_victim) s.min_epoch = min_seen;
    }
    if (victim == s.lru.end()) {
      // All live: cost-aware selection within the tail eviction window.
      // Strict less-than keeps ties on the coldest (furthest-back)
      // candidate.
      victim = std::prev(s.lru.end());
      auto probe = victim;
      for (std::size_t i = 1; i < config_.eviction_window; ++i) {
        if (probe == s.lru.begin()) break;
        --probe;
        // Never consider the just-inserted MRU entry at the front.
        if (probe == s.lru.begin()) break;
        if (probe->second->solve_cost_seconds <
            victim->second->solve_cost_seconds) {
          victim = probe;
        }
      }
    }
    s.index.erase(victim->first);
    s.lru.erase(victim);
    ++s.counters.evictions;
    if (stale_victim) {
      // The evicted entry may have carried the minimum epoch; recompute the
      // exact bound (rare path — stale entries exist only around epoch
      // advances, and shards are small).
      s.min_epoch = std::numeric_limits<std::uint64_t>::max();
      for (const auto& item : s.lru) {
        s.min_epoch = std::min(s.min_epoch, item.second->epoch_id);
      }
    }
  }
}

void result_cache::set_live_epoch(std::uint64_t epoch_id) noexcept {
  // Monotone max: concurrent advance_epoch calls may race here after their
  // (serialized) store advances — a late older store must not roll the live
  // marker back and expose the current epoch's entries to eviction.
  std::uint64_t current = live_epoch_.load(std::memory_order_relaxed);
  while (current < epoch_id &&
         !live_epoch_.compare_exchange_weak(current, epoch_id,
                                            std::memory_order_relaxed)) {
  }
}

std::uint64_t result_cache::live_epoch() const noexcept {
  return live_epoch_.load(std::memory_order_relaxed);
}

std::size_t result_cache::retire_epochs_before(std::uint64_t first_live) {
  std::size_t purged = 0;
  for (const auto& s : shards_) {
    const std::lock_guard<std::mutex> lock(s->mutex);
    s->min_epoch = std::numeric_limits<std::uint64_t>::max();
    for (auto it = s->lru.begin(); it != s->lru.end();) {
      if (it->second->epoch_id < first_live) {
        s->index.erase(it->first);
        it = s->lru.erase(it);
        ++s->counters.retired;
        ++purged;
      } else {
        s->min_epoch = std::min(s->min_epoch, it->second->epoch_id);
        ++it;
      }
    }
  }
  return purged;
}

result_cache::stats result_cache::snapshot() const {
  stats total;
  for (const auto& s : shards_) {
    const std::lock_guard<std::mutex> lock(s->mutex);
    total.hits += s->counters.hits;
    total.misses += s->counters.misses;
    total.insertions += s->counters.insertions;
    total.evictions += s->counters.evictions;
    total.retired += s->counters.retired;
    total.entries += s->lru.size();
  }
  return total;
}

void result_cache::clear() {
  for (const auto& s : shards_) {
    const std::lock_guard<std::mutex> lock(s->mutex);
    s->lru.clear();
    s->index.clear();
    s->min_epoch = std::numeric_limits<std::uint64_t>::max();
  }
}

}  // namespace dsteiner::service
