#include "service/result_cache.hpp"

#include <algorithm>

#include "util/hash.hpp"

namespace dsteiner::service {

std::size_t cache_key_hash::operator()(const cache_key& key) const noexcept {
  std::uint64_t h = util::hash_combine(key.graph_fingerprint, key.seed_hash);
  h = util::hash_combine(h, key.config_hash);
  return static_cast<std::size_t>(h);
}

result_cache::result_cache(config cfg) : config_(cfg) {
  config_.shards = std::max<std::size_t>(1, config_.shards);
  config_.capacity = std::max<std::size_t>(1, config_.capacity);
  config_.shards = std::min(config_.shards, config_.capacity);
  config_.eviction_window = std::max<std::size_t>(1, config_.eviction_window);
  per_shard_capacity_ =
      (config_.capacity + config_.shards - 1) / config_.shards;
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<shard>());
  }
}

result_cache::shard& result_cache::shard_for(const cache_key& key) {
  const std::size_t h = cache_key_hash{}(key);
  // Mix again so shard choice is independent of the index's bucket choice.
  return *shards_[util::mix64(h) % shards_.size()];
}

result_cache::entry_ptr result_cache::find(
    const cache_key& key, std::span<const graph::vertex_id> canonical_seeds,
    bool count_miss) {
  shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.index.find(key);
  if (it == s.index.end()) {
    if (count_miss) ++s.counters.misses;
    return nullptr;
  }
  const entry_ptr& entry = it->second->second;
  if (!std::equal(entry->seeds.begin(), entry->seeds.end(),
                  canonical_seeds.begin(), canonical_seeds.end())) {
    if (count_miss) ++s.counters.misses;  // hash collision: treat as a miss
    return nullptr;
  }
  s.lru.splice(s.lru.begin(), s.lru, it->second);
  ++s.counters.hits;
  return entry;
}

void result_cache::insert(const cache_key& key, entry_ptr entry) {
  shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.index.find(key);
  if (it != s.index.end()) {
    it->second->second = std::move(entry);
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return;
  }
  s.lru.emplace_front(key, std::move(entry));
  s.index.emplace(key, s.lru.begin());
  ++s.counters.insertions;
  if (s.lru.size() > per_shard_capacity_) {
    // Cost-aware victim selection: walk the eviction window from the LRU
    // tail and drop the entry whose recompute cost is smallest. Strict
    // less-than keeps ties on the coldest (furthest-back) candidate.
    auto victim = std::prev(s.lru.end());
    auto probe = victim;
    for (std::size_t i = 1; i < config_.eviction_window; ++i) {
      if (probe == s.lru.begin()) break;
      --probe;
      // Never consider the just-inserted MRU entry at the front.
      if (probe == s.lru.begin()) break;
      if (probe->second->solve_cost_seconds <
          victim->second->solve_cost_seconds) {
        victim = probe;
      }
    }
    s.index.erase(victim->first);
    s.lru.erase(victim);
    ++s.counters.evictions;
  }
}

result_cache::stats result_cache::snapshot() const {
  stats total;
  for (const auto& s : shards_) {
    const std::lock_guard<std::mutex> lock(s->mutex);
    total.hits += s->counters.hits;
    total.misses += s->counters.misses;
    total.insertions += s->counters.insertions;
    total.evictions += s->counters.evictions;
    total.entries += s->lru.size();
  }
  return total;
}

void result_cache::clear() {
  for (const auto& s : shards_) {
    const std::lock_guard<std::mutex> lock(s->mutex);
    s->lru.clear();
    s->index.clear();
  }
}

}  // namespace dsteiner::service
