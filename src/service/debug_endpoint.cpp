#include "service/debug_endpoint.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <string>

#include "runtime/net/cluster_telemetry.hpp"
#include "service/metrics_text.hpp"

namespace dsteiner::service {

namespace {

void line(std::string& out, const char* fmt, ...) {
  char buffer[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  out.append(buffer);
  out.push_back('\n');
}

}  // namespace

debug_endpoint::debug_endpoint(const steiner_service& service)
    : service_(service) {
  server_.add_route("/metrics", "text/plain; version=0.0.4",
                    [this](std::string_view) {
                      return render_metrics_text(service_.snapshot());
                    });
  server_.add_route("/statusz", "text/plain",
                    [this](std::string_view) { return render_statusz(); });
  server_.add_route("/tracez", "application/json",
                    [this](std::string_view query) {
                      return render_tracez(query);
                    });
  server_.add_route("/slo", "text/plain; version=0.0.4",
                    [this](std::string_view) {
                      return render_slo_text(service_.snapshot());
                    });
  server_.add_route("/clusterz", "application/json",
                    [this](std::string_view) { return render_clusterz(); });
}

std::string debug_endpoint::render_statusz() const {
  const service_snapshot snap = service_.snapshot();
  const service_stats& s = snap.stats;
  std::string out;
  out.reserve(2048);
  line(out, "dsteiner steiner_service status");
  line(out, "");
  line(out, "epoch: current=%" PRIu64 " first_live=%" PRIu64 " advances=%" PRIu64,
       service_.current_epoch(), service_.epochs().first_live_epoch(),
       s.epoch_advances);
  line(out, "queue: depth=%" PRIu64 " peak=%" PRIu64 " promoted=%" PRIu64,
       s.exec.queue_depth, s.exec.peak_queue_depth, s.exec.promoted);
  line(out,
       "queries: total=%" PRIu64 " cold=%" PRIu64 " warm=%" PRIu64
       " cache_hits=%" PRIu64 " stale=%" PRIu64 " coalesced=%" PRIu64,
       s.queries, s.cold_solves, s.warm_solves, s.cache_hits, s.stale_hits,
       s.coalesced);
  line(out,
       "qos: cancelled=%" PRIu64 " deadline_rejected=%" PRIu64
       " deadline_expired=%" PRIu64,
       s.cancelled, s.deadline_rejected, s.deadline_expired);
  line(out, "cache: entries=%" PRIu64 " hits=%" PRIu64 " misses=%" PRIu64,
       s.cache.entries, s.cache.hits, s.cache.misses);
  line(out,
       "distshare: fragments=%" PRIu64 " bytes=%" PRIu64
       " assisted_solves=%" PRIu64 " oracle_builds=%" PRIu64,
       s.fragments.fragments, s.fragments.bytes_in_use, s.fragment_assisted,
       s.oracle_builds);
  line(out,
       "growth: bucketed_solves=%" PRIu64 " buckets=%" PRIu64 " tiles=%" PRIu64
       " bucket_pruned=%" PRIu64 " last_delta=%" PRIu64
       " last_tile_threshold=%" PRIu64,
       s.bucketed_solves, s.growth_buckets_processed, s.growth_tiles,
       s.growth_bucket_pruned, s.growth_last_delta,
       s.growth_last_tile_threshold);
  line(out,
       "net: solves=%" PRIu64 " bytes_sent=%" PRIu64 " bytes_modelled=%" PRIu64
       " frames=%" PRIu64 " supersteps=%" PRIu64 " votes=%" PRIu64
       " ghost_labels=%" PRIu64,
       s.distributed_solves, s.net_bytes_sent, s.net_bytes_modelled,
       s.net_frames_sent, s.net_supersteps, s.net_vote_rounds,
       s.net_ghost_labels);
  line(out,
       "cluster: telemetry_samples=%" PRIu64 " supersteps=%" PRIu64
       " straggler_supersteps=%" PRIu64 " superstep_p50=%.6fs"
       " comm_wait_p50=%.6fs",
       s.cluster_telemetry_samples, s.cluster_supersteps,
       s.cluster_straggler_supersteps,
       snap.cluster_superstep_seconds.percentile(50.0),
       snap.cluster_comm_wait_seconds.percentile(50.0));
  line(out,
       "latency: p50=%.6fs p99=%.6fs mean=%.6fs samples=%" PRIu64,
       snap.total.percentile(50.0), snap.total.percentile(99.0),
       snap.total.mean(), snap.total.count);
  line(out,
       "model: solve_p50=%.6fs modelled_p50=%.6fs abs_err_p50=%.6fs",
       snap.cold_solve.percentile(50.0), snap.modelled_solve.percentile(50.0),
       snap.model_abs_error.percentile(50.0));
  line(out, "slow_queries: total=%" PRIu64 " retained=%zu", s.slow_queries,
       service_.slow_log().size());
  line(out,
       "tracing: sampled=%" PRIu64 " flight_recorder=%zu slo_violations=%"
       PRIu64,
       s.sampled_traces, service_.flight_recorder().size(), s.slo_violations);
  line(out,
       "cost_model: ready=%d samples=%" PRIu64 " abs_err_ema=%.6fs "
       "model_admissions=%" PRIu64,
       snap.cost_model.ready ? 1 : 0, snap.cost_model.samples,
       snap.cost_model.abs_error_ema_seconds, s.model_admissions);
  for (std::size_t i = 0; i < obs::query_features::k_dim; ++i) {
    line(out, "cost_model.w[%-12s] = %+.6g", obs::query_features::name(i),
         snap.cost_model.coefficients[i]);
  }
  line(out,
       "estimate_error: used_p50=%.6fs model_p50=%.6fs baseline_p50=%.6fs",
       snap.estimate_error.percentile(50.0),
       snap.estimate_error_model.percentile(50.0),
       snap.estimate_error_baseline.percentile(50.0));
  for (std::size_t p = 0; p < snap.slo.classes.size(); ++p) {
    const auto& c = snap.slo.classes[p];
    const char* name = p < k_priority_classes
                           ? to_string(static_cast<priority_class>(p))
                           : "other";
    line(out,
         "slo[%s]: objective=%.3fs good=%" PRIu64 " bad=%" PRIu64
         " burn_short=%.3f burn_long=%.3f",
         name, c.objective_seconds, c.good_total, c.bad_total,
         c.burn_rate_short, c.burn_rate_long);
  }
  return out;
}

std::string debug_endpoint::render_tracez(std::string_view query) const {
  // Slow/violating traces first (oldest first), then the head-sampled
  // flight recorder; ?limit=N keeps the newest N of the merged list.
  auto traces = service_.slow_log().snapshot();
  const auto sampled = service_.flight_recorder().snapshot();
  traces.insert(traces.end(), sampled.begin(), sampled.end());
  const std::uint64_t limit =
      obs::query_param_u64(query, "limit", traces.size());
  const std::size_t keep =
      static_cast<std::size_t>(std::min<std::uint64_t>(limit, traces.size()));
  const std::size_t first = traces.size() - keep;
  std::string out;
  out.reserve(1024);
  out.push_back('[');
  for (std::size_t i = first; i < traces.size(); ++i) {
    if (i != first) out.push_back(',');
    out.append(traces[i]->to_chrome_json());
  }
  out.push_back(']');
  return out;
}

std::string debug_endpoint::render_clusterz() const {
  const std::shared_ptr<const runtime::net::cluster_trace> trace =
      service_.cluster_trace_snapshot();
  if (trace == nullptr) {
    // No distributed solve has completed with telemetry on yet; world 0
    // distinguishes "nothing to report" from a real single-rank trace.
    return "{\"world\":0,\"samples\":0,\"supersteps\":0,\"critical_rank\":-1,"
           "\"critical_supersteps\":0,\"max_compute_skew\":0.000000,"
           "\"comm_wait_fraction\":0.000000,\"straggler_report\":[]}";
  }
  return runtime::net::render_cluster_json(*trace);
}

}  // namespace dsteiner::service
