// Prometheus-style text exposition of a service metrics snapshot.
//
// Renders steiner_service::snapshot() in the text format 0.0.4 a Prometheus
// scraper (or promtool) ingests directly: one HELP/TYPE header per metric,
// counters as monotone totals, and the per-stage log2 latency histograms as
// cumulative `_bucket{le="..."}` series with `_sum`/`_count`. The service
// keeps no per-query samples — quantiles come from the bucket boundaries on
// the scraping side, which is exactly what the format models.
#pragma once

#include <string>
#include <string_view>

#include "service/steiner_service.hpp"

namespace dsteiner::service {

/// Renders `snap` as Prometheus text exposition format 0.0.4. `prefix`
/// namespaces every metric (default "dsteiner"): dsteiner_queries_total,
/// dsteiner_cold_solve_seconds_bucket{le="0.000256"}, ...
[[nodiscard]] std::string render_metrics_text(const service_snapshot& snap,
                                              std::string_view prefix = "dsteiner");

/// Renders only the SLO families (objectives, lifetime good/bad counters,
/// short/long-window burn-rate gauges) from `snap.slo` — the body of the
/// /slo debug route. Same exposition format as render_metrics_text, and the
/// same series names, so a scraper can target either route.
[[nodiscard]] std::string render_slo_text(const service_snapshot& snap,
                                          std::string_view prefix = "dsteiner");

}  // namespace dsteiner::service
