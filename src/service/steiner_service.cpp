#include "service/steiner_service.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "runtime/parallel/worker_pool.hpp"
#include "util/hash.hpp"

namespace dsteiner::service {

const char* to_string(solve_kind kind) noexcept {
  switch (kind) {
    case solve_kind::cold: return "cold";
    case solve_kind::warm_start: return "warm-start";
    case solve_kind::cache_hit: return "cache-hit";
    case solve_kind::coalesced: return "coalesced";
  }
  return "?";
}

steiner_service::steiner_service(graph::csr_graph graph, service_config config)
    : graph_(std::move(graph)),
      config_(config),
      cache_(config.cache),
      exec_(config.exec) {
  // Core-budget split: the executor's workers provide inter-query
  // parallelism; whatever the budget leaves per worker goes to the threaded
  // engine inside each solve (intra-query).
  const std::size_t budget =
      config_.core_budget != 0 ? config_.core_budget
                               : runtime::parallel::worker_pool::default_threads();
  const std::size_t workers = std::max<std::size_t>(1, config_.exec.num_threads);
  intra_query_threads_ = std::max<std::size_t>(1, budget / workers);
  grant_worker_budget(config_.solver);
}

void steiner_service::grant_worker_budget(
    core::solver_config& config) const noexcept {
  if (config.mode == runtime::execution_mode::parallel_threads &&
      config.num_threads == 0) {
    config.num_threads = intra_query_threads_;
  }
}

std::uint64_t steiner_service::config_hash(
    const core::solver_config& config) noexcept {
  // Every output- or metrics-affecting field of solver_config and cost_model
  // must be hashed below — a field that drops out of the key lets two
  // distinct configs share a cache entry. These asserts force this function
  // to be revisited when either struct grows (update the expected size
  // alongside the new hash line). Deliberate exception: num_threads is NOT
  // hashed — the threaded engine's schedule is thread-count invariant, so
  // the tree and every phase metric are identical across worker budgets and
  // different budgets may share one cache entry.
  static_assert(sizeof(runtime::cost_model) == 8 * sizeof(double),
                "cost_model changed: update config_hash");
  static_assert(sizeof(core::solver_config) <= 72 + sizeof(runtime::cost_model),
                "solver_config changed: update config_hash");
  const auto f64 = [](double value) {
    return std::bit_cast<std::uint64_t>(value);
  };
  std::uint64_t h = util::hash_combine(0xc0f1, config.num_ranks);
  h = util::hash_combine(h, static_cast<std::uint64_t>(config.policy));
  h = util::hash_combine(h, static_cast<std::uint64_t>(config.mode));
  h = util::hash_combine(h, static_cast<std::uint64_t>(config.scheme));
  h = util::hash_combine(h, config.use_delegates ? 1 : 0);
  h = util::hash_combine(h, config.delegate_threshold);
  h = util::hash_combine(h, config.batch_size);
  h = util::hash_combine(h, config.dense_distance_graph ? 1 : 0);
  h = util::hash_combine(h, config.allreduce_chunk_items);
  h = util::hash_combine(h, config.allow_disconnected_seeds ? 1 : 0);
  h = util::hash_combine(h, config.validate ? 1 : 0);
  h = util::hash_combine(h, f64(config.costs.visit_cost));
  h = util::hash_combine(h, f64(config.costs.reject_cost));
  h = util::hash_combine(h, f64(config.costs.send_cost));
  h = util::hash_combine(h, f64(config.costs.remote_msg_cost));
  h = util::hash_combine(h, f64(config.costs.collective_alpha));
  h = util::hash_combine(h, f64(config.costs.collective_per_byte));
  h = util::hash_combine(h, f64(config.costs.sequential_unit));
  h = util::hash_combine(h, f64(config.costs.unit_seconds));
  return h;
}

executor::task steiner_service::make_task(
    query q, std::shared_ptr<std::promise<query_result>> promise) {
  util::timer admitted;
  return [this, q = std::move(q), promise = std::move(promise),
          admitted](double queue_wait) mutable {
    try {
      promise->set_value(execute(std::move(q), queue_wait, admitted));
    } catch (...) {
      // Failed queries still complete: record their end-to-end latency so
      // snapshot()'s per-stage sample counts reconcile (every query that
      // recorded a queue wait also lands in `total`).
      total_hist_.record(admitted.seconds());
      promise->set_exception(std::current_exception());
    }
  };
}

std::future<query_result> steiner_service::submit(query q) {
  auto promise = std::make_shared<std::promise<query_result>>();
  std::future<query_result> future = promise->get_future();
  exec_.post(make_task(std::move(q), std::move(promise)));
  return future;
}

std::optional<std::future<query_result>> steiner_service::try_submit(query q) {
  auto promise = std::make_shared<std::promise<query_result>>();
  std::future<query_result> future = promise->get_future();
  if (!exec_.try_post(make_task(std::move(q), std::move(promise)))) {
    return std::nullopt;
  }
  return future;
}

query_result steiner_service::solve(query q) {
  return submit(std::move(q)).get();
}

steiner_service::donor_ptr steiner_service::find_donor(
    std::span<const graph::vertex_id> canonical_seeds) {
  const std::lock_guard<std::mutex> lock(donors_mutex_);
  donor_ptr best;
  std::size_t best_size = config_.warm_delta_limit + 1;
  for (const auto& candidate : donors_) {
    const auto delta =
        core::compute_seed_delta(candidate->seeds, canonical_seeds);
    if (delta.size() < best_size) {
      best_size = delta.size();
      best = candidate;
      if (best_size == 0) break;
    }
  }
  return best;
}

void steiner_service::remember_donor(donor_ptr donor) {
  const std::lock_guard<std::mutex> lock(donors_mutex_);
  // One donor per seed set: repeated solves of a hot set refresh its slot
  // instead of flushing the other sets out of the bounded registry.
  for (auto it = donors_.begin(); it != donors_.end(); ++it) {
    if ((*it)->seeds == donor->seeds) {
      donors_.erase(it);
      break;
    }
  }
  donors_.push_front(std::move(donor));
  while (donors_.size() > config_.donor_history) donors_.pop_back();
}

query_result steiner_service::execute(query q, double queue_wait,
                                      util::timer admitted) {
  query_result out;
  out.query_id = ++query_counter_;
  out.queue_wait_seconds = queue_wait;
  queue_wait_hist_.record(queue_wait);

  core::solver_config solver_config = q.config.value_or(config_.solver);
  grant_worker_budget(solver_config);
  const std::vector<graph::vertex_id> canonical =
      core::canonicalize_seeds(graph_, q.seeds);
  const cache_key key{
      graph_.fingerprint(),
      util::hash_range(canonical.data(), canonical.size(), 0x5eed),
      config_hash(solver_config)};
  const bool cacheable = config_.enable_cache && q.use_cache;

  const auto finish_from_entry = [&](const cached_solve& entry,
                                     solve_kind kind) {
    out.result = entry.result;
    out.kind = kind;
    out.total_seconds = admitted.seconds();
    if (kind == solve_kind::cache_hit) {
      cache_hit_total_hist_.record(out.total_seconds);
    }
    total_hist_.record(out.total_seconds);
    return out;
  };

  // Single-flight admission for cacheable queries: serve from the cache,
  // wait on an identical in-flight solve, or become the leader that solves.
  std::promise<result_cache::entry_ptr> inflight_promise;
  bool leader = false;
  if (cacheable) {
    if (const auto hit = cache_.find(key, canonical)) {
      ++cache_hits_;
      return finish_from_entry(*hit, solve_kind::cache_hit);
    }
    std::shared_future<result_cache::entry_ptr> waiter;
    {
      const std::lock_guard<std::mutex> lock(inflight_mutex_);
      // Re-check under the lock: a leader publishes to the cache before it
      // deregisters, so missing both cache and registry here is impossible.
      // The outer lookup already counted this query's miss.
      if (const auto hit = cache_.find(key, canonical, /*count_miss=*/false)) {
        ++cache_hits_;
        return finish_from_entry(*hit, solve_kind::cache_hit);
      }
      const auto it = inflight_.find(key);
      if (it != inflight_.end()) {
        waiter = it->second;
      } else {
        leader = true;
        inflight_.emplace(key, inflight_promise.get_future().share());
      }
    }
    if (!leader) {
      const result_cache::entry_ptr entry = waiter.get();  // rethrows failures
      if (entry != nullptr && entry->seeds == canonical) {
        ++coalesced_;
        return finish_from_entry(*entry, solve_kind::coalesced);
      }
      // 64-bit key collision with a different seed set: solve independently.
    }
  }

  // From leadership registration to promise resolution, every throw —
  // including allocation failures building the cache entry — must resolve
  // the inflight promise and deregister, or coalesced waiters hang forever
  // and the key stays poisoned.
  util::timer solve_timer;
  std::shared_ptr<core::solve_artifacts> artifacts;
  result_cache::entry_ptr entry;
  try {
    // Artifacts are only worth their O(|V|) capture cost if warm starts can
    // ever consume them.
    if (config_.enable_warm_start) {
      artifacts = std::make_shared<core::solve_artifacts>();
    }
    bool warmed = false;
    if (config_.enable_warm_start && q.allow_warm_start &&
        canonical.size() > 1) {
      if (const auto donor = find_donor(canonical)) {
        try {
          out.result = core::solve_steiner_tree_warm(
              graph_, canonical, *donor, solver_config, artifacts.get(),
              &out.warm);
          out.kind = solve_kind::warm_start;
          ++warm_solves_;
          warmed = true;
        } catch (const std::invalid_argument&) {
          // Donor did not match after all (defensive): cold solve below.
          ++warm_fallbacks_;
        }
      }
    }
    if (!warmed) {
      out.result =
          artifacts != nullptr
              ? core::solve_steiner_tree_capture(graph_, canonical,
                                                 solver_config, *artifacts)
              : core::solve_steiner_tree(graph_, canonical, solver_config);
      out.kind = solve_kind::cold;
      ++cold_solves_;
    }
    out.solve_seconds = solve_timer.seconds();
    (out.kind == solve_kind::warm_start ? warm_solve_hist_ : cold_solve_hist_)
        .record(out.solve_seconds);

    auto fresh = std::make_shared<cached_solve>();
    fresh->seeds = canonical;
    fresh->result = out.result;
    fresh->solve_cost_seconds = out.solve_seconds;
    entry = std::move(fresh);
  } catch (...) {
    if (leader) {
      inflight_promise.set_exception(std::current_exception());
      const std::lock_guard<std::mutex> lock(inflight_mutex_);
      inflight_.erase(key);
    }
    throw;
  }

  if (leader) inflight_promise.set_value(entry);
  if (cacheable) cache_.insert(key, entry);
  if (leader) {
    // Deregister only after the cache insert: queries that miss both the
    // cache and this registry entry would otherwise race into extra solves.
    const std::lock_guard<std::mutex> lock(inflight_mutex_);
    inflight_.erase(key);
  }
  if (artifacts != nullptr && !artifacts->empty()) {
    remember_donor(std::move(artifacts));
  }

  out.total_seconds = admitted.seconds();
  total_hist_.record(out.total_seconds);
  return out;
}

service_stats steiner_service::stats() const {
  service_stats s;
  s.queries = query_counter_.load();
  s.cold_solves = cold_solves_.load();
  s.warm_solves = warm_solves_.load();
  s.warm_fallbacks = warm_fallbacks_.load();
  s.cache_hits = cache_hits_.load();
  s.coalesced = coalesced_.load();
  s.cache = cache_.snapshot();
  s.exec = exec_.stats();
  return s;
}

service_snapshot steiner_service::snapshot() const {
  service_snapshot snap;
  snap.stats = stats();
  snap.queue_wait = queue_wait_hist_.snapshot();
  snap.cold_solve = cold_solve_hist_.snapshot();
  snap.warm_solve = warm_solve_hist_.snapshot();
  snap.cache_hit_total = cache_hit_total_hist_.snapshot();
  snap.total = total_hist_.snapshot();
  return snap;
}

}  // namespace dsteiner::service
