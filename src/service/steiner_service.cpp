#include "service/steiner_service.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "runtime/net/dist_solver.hpp"
#include "runtime/parallel/worker_pool.hpp"
#include "util/hash.hpp"

namespace dsteiner::service {

const char* to_string(solve_kind kind) noexcept {
  switch (kind) {
    case solve_kind::cold: return "cold";
    case solve_kind::warm_start: return "warm-start";
    case solve_kind::cache_hit: return "cache-hit";
    case solve_kind::coalesced: return "coalesced";
    case solve_kind::stale_hit: return "stale-hit";
  }
  return "?";
}

steiner_service::steiner_service(graph::csr_graph graph, service_config config)
    : config_(config),
      epochs_(std::move(graph), config.epochs),
      cache_(config.cache),
      fragments_(config.fragment_store),
      oracle_(config.oracle),
      cost_model_(config.cost_model),
      slo_(k_priority_classes, config.slo),
      slow_log_(config.trace.slow_log_capacity),
      flight_recorder_(config.trace.flight_recorder_capacity),
      exec_(config.exec) {
  // Core-budget split: the executor's workers provide inter-query
  // parallelism; whatever the budget leaves per worker goes to the threaded
  // engine inside each solve (intra-query).
  const std::size_t budget =
      config_.core_budget != 0 ? config_.core_budget
                               : runtime::parallel::worker_pool::default_threads();
  const std::size_t workers = std::max<std::size_t>(1, config_.exec.num_threads);
  intra_query_threads_ = std::max<std::size_t>(1, budget / workers);
  grant_worker_budget(config_.solver);
  cache_.set_live_epoch(epochs_.current()->epoch_id());
  // Anchor the oracle's validity tracking to the initial epoch; tables build
  // lazily on first demand (or via warm_distance_oracle()).
  oracle_.advance_epoch(epochs_.current()->fingerprint(), {});
}

void steiner_service::warm_distance_oracle() {
  if (!config_.enable_oracle) return;
  const graph::epoch_graph::ptr epoch = epochs_.current();
  if (!oracle_.needs_build(epoch->fingerprint())) return;
  oracle_.build(*epoch->csr(), epoch->fingerprint());
}

void steiner_service::kick_oracle_build(const graph::epoch_graph::ptr& epoch) {
  if (!config_.enable_oracle) return;
  // Only the current epoch is worth landmark tables: pinned queries on older
  // epochs are a shrinking population.
  const std::uint64_t fp = epoch->fingerprint();
  if (!oracle_.needs_build(fp) ||
      epoch->epoch_id() != epochs_.current()->epoch_id()) {
    return;
  }
  std::uint64_t expected = oracle_kicked_fp_.load(std::memory_order_acquire);
  if (expected == fp ||
      !oracle_kicked_fp_.compare_exchange_strong(expected, fp,
                                                 std::memory_order_acq_rel)) {
    return;  // a build for this epoch is already kicked
  }
  // Any path that discards the build — shed at admission, displaced or
  // expired from the queue, or a failed build — must release the kick token,
  // or the oracle stays suppressed for the whole epoch.
  const auto unkick = [this] {
    oracle_kicked_fp_.store(0, std::memory_order_release);
  };
  executor::task_options opts;
  opts.priority = priority_index(priority_class::background);
  opts.on_dropped = [unkick](drop_reason) { unkick(); };
  const bool posted = exec_.try_post(
      [this, epoch, unkick](double) {
        try {
          oracle_.build(*epoch->csr(), epoch->fingerprint());
        } catch (...) {
          unkick();  // best-effort: queries keep running unpruned; retry later
        }
      },
      std::move(opts));
  if (!posted) unkick();  // shed under saturation; a later cold solve re-kicks
}

void steiner_service::grant_worker_budget(
    core::solver_config& config) const noexcept {
  if (config.mode == runtime::execution_mode::parallel_threads &&
      config.num_threads == 0) {
    config.num_threads = intra_query_threads_;
  }
}

void steiner_service::record_net_reports(
    const std::vector<runtime::net::net_solve_report>& reports,
    obs::query_trace* trace) {
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_modelled = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t ghost_labels = 0;
  std::uint64_t supersteps = 0;
  std::uint64_t vote_rounds = 0;
  for (const runtime::net::net_solve_report& r : reports) {
    bytes_sent += r.stats.bytes_sent;
    bytes_modelled += r.bytes_modelled;
    frames_sent += r.stats.frames_sent;
    ghost_labels += r.ghost_labels_sent;
    // Supersteps march in lockstep across ranks (the vote is a barrier), so
    // the mesh-wide count is the max, not the sum.
    supersteps = std::max(supersteps, r.supersteps);
    vote_rounds += r.vote_rounds;
    for (const runtime::net::net_superstep_sample& s : r.samples) {
      comm_bytes_modelled_hist_.record(static_cast<double>(s.bytes_modelled) *
                                       1e-6);
      comm_bytes_measured_hist_.record(static_cast<double>(s.bytes_measured) *
                                       1e-6);
    }
  }
  net_bytes_sent_ += bytes_sent;
  net_bytes_modelled_ += bytes_modelled;
  net_frames_sent_ += frames_sent;
  net_ghost_labels_ += ghost_labels;
  net_supersteps_ += supersteps;
  net_vote_rounds_ += vote_rounds;
  if (trace != nullptr) {
    trace->add_event("net_bytes_sent", static_cast<double>(bytes_sent));
    trace->add_event("net_bytes_modelled",
                     static_cast<double>(bytes_modelled));
    trace->add_event("net_supersteps", static_cast<double>(supersteps));
    trace->add_event("net_vote_rounds", static_cast<double>(vote_rounds));
  }

  // Cluster telemetry plane: rank 0's report carries every rank's merged
  // per-superstep samples (empty when config.net_telemetry is off). Fold
  // them into counters/histograms, merge them into the query trace as
  // per-rank Perfetto tracks, and publish the whole trace for /clusterz.
  for (const runtime::net::net_solve_report& r : reports) {
    if (r.rank != 0 || r.cluster.samples.empty()) continue;
    const std::vector<runtime::net::straggler_row> rows =
        runtime::net::straggler_rows(r.cluster);
    const runtime::net::cluster_summary digest =
        runtime::net::summarize_cluster(r.cluster);
    cluster_telemetry_samples_ += r.cluster.samples.size();
    cluster_supersteps_ += rows.size();
    std::uint64_t straggling = 0;
    for (const runtime::net::straggler_row& row : rows) {
      if (row.compute_skew >= 2.0) ++straggling;
    }
    cluster_straggler_supersteps_ += straggling;
    for (const runtime::net::rank_telemetry& t : r.cluster.samples) {
      cluster_superstep_seconds_hist_.record(
          static_cast<double>(t.total_nanos()) * 1e-9);
      cluster_comm_wait_seconds_hist_.record(
          static_cast<double>(t.comm_nanos()) * 1e-9);
    }
    if (trace != nullptr) {
      for (const runtime::net::rank_telemetry& t : r.cluster.samples) {
        obs::rank_slice slice;
        slice.phase = runtime::net::to_string(
            static_cast<runtime::net::telemetry_phase>(t.phase));
        slice.rank = t.rank;
        slice.superstep = t.superstep;
        slice.compute_seconds = static_cast<double>(t.compute_nanos) * 1e-9;
        slice.send_flush_seconds =
            static_cast<double>(t.send_flush_nanos) * 1e-9;
        slice.recv_wait_seconds = static_cast<double>(t.recv_wait_nanos) * 1e-9;
        slice.vote_seconds = static_cast<double>(t.vote_nanos) * 1e-9;
        slice.visitors = t.visitors;
        for (const runtime::net::telemetry_peer_traffic& p : t.peers) {
          slice.bytes_sent += p.bytes_sent;
        }
        trace->add_rank_slice(slice);
      }
      trace->set_cluster_summary(
          static_cast<std::uint32_t>(digest.world), digest.supersteps,
          digest.critical_rank, digest.critical_supersteps,
          digest.max_compute_skew, digest.comm_wait_fraction);
    }
    auto published = std::make_shared<runtime::net::cluster_trace>(r.cluster);
    {
      const std::lock_guard<std::mutex> lock(cluster_mutex_);
      last_cluster_ = std::move(published);
    }
    break;  // one rank-0 report per solve
  }
}

std::shared_ptr<const runtime::net::cluster_trace>
steiner_service::cluster_trace_snapshot() const {
  const std::lock_guard<std::mutex> lock(cluster_mutex_);
  return last_cluster_;
}

std::uint64_t steiner_service::config_hash(
    const core::solver_config& config) noexcept {
  // Every output- or metrics-affecting field of solver_config and cost_model
  // must be hashed below — a field that drops out of the key lets two
  // distinct configs share a cache entry. These asserts force this function
  // to be revisited when either struct grows (update the expected size
  // alongside the new hash line). Deliberate exception: num_threads is NOT
  // hashed — the threaded engine's schedule is thread-count invariant, so
  // the tree and every phase metric are identical across worker budgets and
  // different budgets may share one cache entry.
  // Deliberate exception #2: `budget` (cancellation/deadline) is NOT hashed —
  // it is pure QoS plumbing that can only abort a solve, never change its
  // output, so budgeted and unbudgeted runs share one cache entry.
  // Deliberate exception #3: `trace` is NOT hashed — tracing is pure
  // observation (traced and untraced solves are bit-identical), so both
  // share one cache entry.
  // Deliberate exception #4: the growth knobs (growth, bucket_delta,
  // tile_threshold) are NOT hashed — bucketed growth changes the phase-1
  // schedule and therefore the metrics, but the output tree is the same
  // lexicographic fixed point, so strict and relaxed queries deliberately
  // share one cache entry (the cached tree is always the strict tree).
  // Deliberate exception #5: `net_telemetry` is NOT hashed — the distributed
  // telemetry plane is pure observation like `trace` (it moves traffic
  // totals by its own frames but never the output tree), so telemetry-on
  // and -off runs share one cache entry.
  static_assert(sizeof(runtime::cost_model) == 8 * sizeof(double),
                "cost_model changed: update config_hash");
  static_assert(sizeof(core::solver_config) <= 120 + sizeof(runtime::cost_model),
                "solver_config changed: update config_hash");
  const auto f64 = [](double value) {
    return std::bit_cast<std::uint64_t>(value);
  };
  std::uint64_t h = util::hash_combine(0xc0f1, config.num_ranks);
  h = util::hash_combine(h, static_cast<std::uint64_t>(config.policy));
  h = util::hash_combine(h, static_cast<std::uint64_t>(config.mode));
  h = util::hash_combine(h, static_cast<std::uint64_t>(config.scheme));
  h = util::hash_combine(h, config.use_delegates ? 1 : 0);
  h = util::hash_combine(h, config.delegate_threshold);
  h = util::hash_combine(h, config.batch_size);
  h = util::hash_combine(h, config.dense_distance_graph ? 1 : 0);
  h = util::hash_combine(h, config.allreduce_chunk_items);
  h = util::hash_combine(h, config.allow_disconnected_seeds ? 1 : 0);
  h = util::hash_combine(h, config.validate ? 1 : 0);
  h = util::hash_combine(h, f64(config.costs.visit_cost));
  h = util::hash_combine(h, f64(config.costs.reject_cost));
  h = util::hash_combine(h, f64(config.costs.send_cost));
  h = util::hash_combine(h, f64(config.costs.remote_msg_cost));
  h = util::hash_combine(h, f64(config.costs.collective_alpha));
  h = util::hash_combine(h, f64(config.costs.collective_per_byte));
  h = util::hash_combine(h, f64(config.costs.sequential_unit));
  h = util::hash_combine(h, f64(config.costs.unit_seconds));
  return h;
}

std::shared_ptr<detail::request_state> steiner_service::make_request_state(
    const request& r) {
  auto st = std::make_shared<detail::request_state>();
  st->id = ++request_counter_;
  st->priority = r.priority;
  st->budget.cancel = st->canceller.token();
  st->budget.user_cancel = r.cancel;
  if (r.deadline) st->budget.deadline = *r.deadline;
  return st;
}

void steiner_service::note_stopped(detail::request_state& st,
                                   util::cancel_reason why) {
  // Status is stored before the caller resolves the promise, so a reader
  // woken by the future observes the terminal status.
  if (why == util::cancel_reason::deadline) {
    ++deadline_expired_;
    st.status.store(request_status::expired, std::memory_order_release);
  } else {
    ++cancelled_;
    st.status.store(request_status::cancelled, std::memory_order_release);
  }
}

executor::task steiner_service::make_task(
    std::shared_ptr<detail::request_state> st, query q, bool relaxed) {
  util::timer admitted;
  return [this, st = std::move(st), q = std::move(q), relaxed,
          admitted](double queue_wait) mutable {
    // Pickup checkpoint: a request cancelled or expired while it queued
    // resolves here without touching a solver — the worker moves straight on
    // to live work.
    const util::cancel_reason pre = st->budget.stop_reason();
    if (pre != util::cancel_reason::none) {
      note_stopped(*st, pre);
      st->promise.set_exception(
          std::make_exception_ptr(util::operation_cancelled(pre)));
      return;
    }
    st->status.store(request_status::running, std::memory_order_release);
    try {
      query_result out =
          execute(std::move(q), queue_wait, admitted,
                  exec_context{&st->budget, st->estimates, st->id, st->priority,
                               relaxed});
      st->status.store(request_status::done, std::memory_order_release);
      st->promise.set_value(std::move(out));
    } catch (const util::operation_cancelled& stopped) {
      // A checkpoint stopped the solve mid-flight: partial work is already
      // discarded by the unwind; record end-to-end latency so snapshot()'s
      // per-stage sample counts reconcile.
      total_hist_.record(admitted.seconds());
      note_stopped(*st, stopped.why());
      st->promise.set_exception(std::current_exception());
    } catch (...) {
      // Failed queries still complete: record their end-to-end latency so
      // snapshot()'s per-stage sample counts reconcile (every query that
      // recorded a queue wait also lands in `total`).
      total_hist_.record(admitted.seconds());
      st->status.store(request_status::failed, std::memory_order_release);
      st->promise.set_exception(std::current_exception());
    }
  };
}

void steiner_service::dispatch(request r,
                               std::shared_ptr<detail::request_state> st,
                               admission mode) {
  const std::size_t prio = priority_index(r.priority);
  const auto reject = [&](reject_reason why) {
    ++shed_by_prio_[prio];
    st->rejection.store(why, std::memory_order_release);
    st->status.store(request_status::rejected, std::memory_order_release);
    st->promise.set_exception(std::make_exception_ptr(request_rejected(why)));
  };

  // Dead on arrival (already-cancelled token, already-passed deadline):
  // resolve without touching the queue.
  const util::cancel_reason pre = st->budget.stop_reason();
  if (pre != util::cancel_reason::none) {
    note_stopped(*st, pre);
    st->promise.set_exception(
        std::make_exception_ptr(util::operation_cancelled(pre)));
    return;
  }

  // Cost-aware admission: only requests with deadlines can be unmeetable,
  // but with tracing, the learned cost model, or SLO tracking on, the
  // estimate is computed anyway — traces report estimate-vs-actual error and
  // the model-vs-baseline histograms need both predictions per query.
  if (r.deadline || config_.trace.enabled || config_.cost_model.enabled ||
      config_.slo.enabled) {
    const admission_estimates est = estimate_completion_seconds(r);
    st->estimates = est;
    if (r.deadline && est.used > 0.0 &&
        std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(est.used)) >
            *r.deadline) {
      ++deadline_rejected_;
      reject(reject_reason::deadline_unmeetable);
      return;
    }
  }

  executor::task_options opts;
  opts.priority = prio;
  opts.deadline = st->budget.deadline;
  opts.on_dropped = [this, st, prio](drop_reason why) {
    if (why == drop_reason::expired) {
      ++shed_by_prio_[prio];
      note_stopped(*st, util::cancel_reason::deadline);
      st->promise.set_exception(std::make_exception_ptr(
          util::operation_cancelled(util::cancel_reason::deadline)));
    } else {  // displaced by a higher-priority arrival
      ++shed_by_prio_[prio];
      st->rejection.store(reject_reason::queue_full, std::memory_order_release);
      st->status.store(request_status::rejected, std::memory_order_release);
      st->promise.set_exception(
          std::make_exception_ptr(request_rejected(reject_reason::queue_full)));
    }
  };

  executor::task t = make_task(
      st, std::move(r.q), r.determinism == determinism_mode::relaxed);
  if (mode == admission::block) {
    exec_.post(std::move(t), std::move(opts));  // throws once shutdown began
  } else if (!exec_.try_post(std::move(t), std::move(opts))) {
    reject(reject_reason::queue_full);
    return;
  }
  ++admitted_by_prio_[prio];
}

query_handle steiner_service::submit(request r) {
  auto st = make_request_state(r);
  st->future = st->promise.get_future().share();
  dispatch(std::move(r), st, admission::shed);
  return query_handle(std::move(st));
}

query_result steiner_service::solve(request r) {
  return submit(std::move(r)).get();
}

std::future<query_result> steiner_service::submit(query q) {
  request r{std::move(q)};
  auto st = make_request_state(r);
  std::future<query_result> future = st->promise.get_future();
  dispatch(std::move(r), std::move(st), admission::block);
  return future;
}

std::optional<std::future<query_result>> steiner_service::try_submit(query q) {
  request r{std::move(q)};
  auto st = make_request_state(r);
  std::future<query_result> future = st->promise.get_future();
  dispatch(std::move(r), st, admission::shed);
  // The only possible rejection here is a saturated queue (legacy queries
  // carry no deadline or token) — map it onto the historical nullopt.
  if (st->status.load(std::memory_order_acquire) == request_status::rejected) {
    return std::nullopt;
  }
  return future;
}

query_result steiner_service::solve(query q) {
  return submit(std::move(q)).get();
}

std::uint64_t steiner_service::advance_epoch(const graph::edge_delta& delta) {
  const graph::epoch_graph::ptr next = epochs_.advance(delta);
  ++epoch_advances_;
  // Epoch-retirement eviction: new-epoch entries are now the protected
  // ones; everything from epochs that left the live window is purged.
  cache_.set_live_epoch(next->epoch_id());
  const std::uint64_t first_live = epochs_.first_live_epoch();
  (void)cache_.retire_epochs_before(first_live);
  (void)fragments_.retire_epochs_before(first_live);
  // The oracle degrades instead of dying: the applied delta's direction
  // decides which bound side (if any) the stale landmark tables keep.
  oracle_.advance_epoch(next->fingerprint(), next->delta_from_parent());
  {
    const std::lock_guard<std::mutex> lock(donors_mutex_);
    std::erase_if(donors_, [first_live](const donor_record& rec) {
      return rec.epoch_id < first_live;
    });
  }
  return next->epoch_id();
}

std::optional<steiner_service::donor_match> steiner_service::find_donor(
    std::span<const graph::vertex_id> canonical_seeds,
    const graph::epoch_graph& epoch) {
  const std::lock_guard<std::mutex> lock(donors_mutex_);
  std::optional<donor_match> best;
  double best_volume = std::numeric_limits<double>::infinity();
  for (const donor_record& rec : donors_) {
    const auto delta =
        core::compute_seed_delta(rec.artifacts->seeds, canonical_seeds);
    if (delta.size() > config_.warm_delta_limit) continue;
    std::vector<graph::applied_edge_edit> edits;
    if (rec.epoch_id != epoch.epoch_id()) {
      auto composed = epochs_.delta_between(rec.epoch_id, epoch.epoch_id());
      if (!composed || composed->size() > config_.warm_edge_edit_limit) {
        continue;
      }
      edits = std::move(*composed);
    }
    // Rank donors by estimated reset-region volume — the vertices the repair
    // will clear and rescan — instead of raw delta count: one removed seed
    // that owned a third of the graph repairs slower than three whose cells
    // were tiny. Removed seeds and modified-edge endpoints contribute their
    // donor cell sizes. An added seed's future cell is unknown; without the
    // oracle it contributes the donor's average cell size, with it the
    // average is scaled by the seed's lower-bound distance to the donor's
    // nearest seed relative to the donor's own spread — a seed landing deep
    // inside existing cells will carve a small one, a far-away (or
    // disconnected) seed a large one. No donor state is probed either way.
    const auto cell_size = [&rec](graph::vertex_id seed) -> double {
      const auto it = rec.cell_sizes.find(seed);
      return it == rec.cell_sizes.end() ? 0.0 : static_cast<double>(it->second);
    };
    const double avg_cell =
        static_cast<double>(rec.artifacts->state.distance.size()) /
        static_cast<double>(std::max<std::size_t>(1, rec.artifacts->seeds.size()));
    const double donor_spread =
        config_.enable_oracle
            ? oracle_.seed_spread(epoch.fingerprint(), rec.artifacts->seeds)
            : 0.0;
    double volume = 0.0;
    for (const graph::vertex_id a : delta.added) {
      double scale = 1.0;
      if (donor_spread > 0.0) {
        graph::weight_t nearest = graph::k_inf_distance;
        for (const graph::vertex_id s : rec.artifacts->seeds) {
          nearest = std::min(
              nearest, oracle_.lower_bound(epoch.fingerprint(), a, s));
          if (nearest == 0) break;
        }
        scale = nearest == graph::k_inf_distance
                    ? 4.0
                    : std::clamp(static_cast<double>(nearest) / donor_spread,
                                 0.25, 4.0);
      }
      volume += avg_cell * scale;
    }
    for (const graph::vertex_id t : delta.removed) volume += cell_size(t);
    for (const graph::applied_edge_edit& e : edits) {
      for (const graph::vertex_id endpoint : {e.u, e.v}) {
        const graph::vertex_id cell = rec.artifacts->state.src[endpoint];
        if (cell != graph::k_no_vertex) volume += cell_size(cell);
      }
    }
    // Strict <: ties go to the most recent donor (front-to-back iteration).
    if (volume < best_volume) {
      best_volume = volume;
      best = donor_match{rec.artifacts, rec.graph_fingerprint, std::move(edits)};
      if (best_volume == 0.0) break;  // exact same-epoch, same-seed donor
    }
  }
  return best;
}

void steiner_service::remember_donor(donor_ptr donor, std::uint64_t epoch_id) {
  donor_record rec;
  rec.epoch_id = epoch_id;
  rec.graph_fingerprint = donor->graph_fingerprint;
  // Per-seed cell sizes, computed once per donor (O(|V|), a sliver of the
  // solve that produced it): the basis of reset-volume ranking.
  rec.cell_sizes.reserve(donor->seeds.size());
  for (const graph::vertex_id src : donor->state.src) {
    if (src != graph::k_no_vertex) ++rec.cell_sizes[src];
  }
  rec.artifacts = std::move(donor);

  const std::lock_guard<std::mutex> lock(donors_mutex_);
  if (epoch_id < epochs_.first_live_epoch()) return;  // raced a retirement
  // One donor per (epoch, seed set): repeated solves of a hot set refresh
  // its slot instead of flushing the other sets out of the bounded registry.
  for (auto it = donors_.begin(); it != donors_.end(); ++it) {
    if (it->epoch_id == epoch_id &&
        it->artifacts->seeds == rec.artifacts->seeds) {
      donors_.erase(it);
      break;
    }
  }
  donors_.push_front(std::move(rec));
  while (donors_.size() > config_.donor_history) donors_.pop_back();
}

obs::query_features steiner_service::build_query_features(
    const graph::epoch_graph& epoch,
    std::span<const graph::vertex_id> canonical,
    const core::solver_config& solver_config, bool warm) const {
  using qf = obs::query_features;
  // Header counts only — materializing an overlay CSR at admission would
  // cost O(m) on the request path.
  obs::query_features f = core::extract_query_features(
      epoch.num_vertices(), epoch.num_arcs(), canonical.size(), solver_config);
  if (config_.enable_oracle) {
    f.x[qf::k_spread] = oracle_.seed_spread(epoch.fingerprint(), canonical);
  }
  const std::uint64_t arcs = epoch.num_arcs();
  f.x[qf::k_overlay] =
      arcs == 0 ? 0.0
                : static_cast<double>(epoch.overlay_arcs()) /
                      static_cast<double>(arcs);
  f.x[qf::k_warm] = warm ? 1.0 : 0.0;
  if (!warm && config_.enable_fragment_reuse && canonical.size() > 1) {
    std::size_t present = 0;
    for (const graph::vertex_id s : canonical) {
      if (fragments_.has(epoch.fingerprint(), s)) ++present;
    }
    f.x[qf::k_fragments] = static_cast<double>(present) /
                           static_cast<double>(canonical.size());
  }
  return f;
}

admission_estimates steiner_service::estimate_completion_seconds(
    const request& r) {
  admission_estimates est;
  // Queue drain ahead of this arrival: entries at its priority or above,
  // spread over the workers, each costing the executor's observed mean task
  // time. No execution history yet -> contributes nothing (admit unknowns).
  const double mean_task = exec_.stats().mean_exec_seconds();
  const double backlog =
      static_cast<double>(exec_.backlog_ahead(priority_index(r.priority)));
  const double workers = static_cast<double>(exec_.num_threads());
  double drain = mean_task * backlog / workers;
  // The queue is only half the drain: solves already *running* occupy the
  // same workers. Charge each one's expected residual (mean cost minus its
  // own elapsed time, floored at zero per task — a task past its mean is
  // presumed near completion, but cannot offset the others' remaining work).
  if (mean_task > 0.0) {
    double residual = 0.0;
    for (const double elapsed : exec_.running_elapsed_seconds()) {
      residual += std::max(0.0, mean_task - elapsed);
    }
    drain += residual / workers;
  }
  est.baseline = drain;
  est.used = drain;

  // Per-path solve estimate, predicted the same way execute() will decide:
  // cached -> near-free, warm-startable -> warm p50, otherwise cold p50.
  // Canonicalization failures (invalid seeds) and retired epoch pins must
  // surface at execution as failures, never as admission rejections.
  const graph::epoch_graph::ptr epoch =
      r.q.epoch ? epochs_.find(*r.q.epoch) : epochs_.current();
  if (epoch == nullptr) return est;
  std::vector<graph::vertex_id> canonical;
  try {
    canonical = core::canonicalize_seeds(epoch->num_vertices(), r.q.seeds);
  } catch (const std::out_of_range&) {
    return est;
  }
  core::solver_config solver_config = r.q.config.value_or(config_.solver);
  grant_worker_budget(solver_config);
  // Relaxed requests will run (a cold solve) bucketed; apply the override
  // here too so the learned model prices the tier that will actually run.
  // The growth knobs are excluded from config_hash, so the key is shared.
  if (r.determinism == determinism_mode::relaxed) {
    solver_config.growth = runtime::growth_mode::bucketed;
  }
  const cache_key key{
      epoch->fingerprint(),
      util::hash_range(canonical.data(), canonical.size(), 0x5eed),
      config_hash(solver_config)};
  if (config_.enable_cache && r.q.use_cache && cache_.peek(key, canonical)) {
    // No solver will run: the learned model predicts solve time, so only
    // the baseline path can price a cache hit.
    est.baseline = drain + cache_hit_total_hist_.snapshot().quantile(0.5);
    est.used = est.baseline;
    return est;
  }
  const bool warmable = config_.enable_warm_start && r.q.allow_warm_start &&
                        canonical.size() > 1 &&
                        find_donor(canonical, *epoch).has_value();
  const double warm_p50 = warm_solve_hist_.snapshot().quantile(0.5);
  double cold_p50 = cold_solve_hist_.snapshot().quantile(0.5);
  // Oracle sharpening: scale the global cold p50 by this request's seed
  // spread relative to the spread of past cold solves — a tight cluster of
  // seeds traverses far less graph than the median historical query, a
  // scattered one far more. Clamped so a noisy bound can at most halve or
  // double the estimate.
  if (cold_p50 > 0.0 && config_.enable_oracle) {
    const std::uint64_t samples =
        spread_samples_.load(std::memory_order_acquire);
    const double spread =
        oracle_.seed_spread(epoch->fingerprint(), canonical);
    if (samples > 0 && spread > 0.0) {
      const double mean_spread =
          spread_sum_.load(std::memory_order_acquire) /
          static_cast<double>(samples);
      if (mean_spread > 0.0) {
        cold_p50 *= std::clamp(spread / mean_spread, 0.5, 2.0);
        ++bound_sharpened_;
      }
    }
  }
  est.baseline = drain + (warmable && warm_p50 > 0.0 ? warm_p50 : cold_p50);
  est.used = est.baseline;

  // Learned model: per-query features in, predicted solve seconds out.
  // Admission trusts it once it has min_samples observations; before that
  // the prediction is still exported for the side-by-side comparison.
  if (config_.cost_model.enabled) {
    const obs::query_features f =
        build_query_features(*epoch, canonical, solver_config, warmable);
    const double predicted = cost_model_.predict_seconds(f);
    if (predicted > 0.0) {
      est.model = drain + predicted;
      if (cost_model_.ready()) {
        est.used = est.model;
        est.model_used = true;
        ++model_admissions_;
      }
    }
  }
  return est;
}

void steiner_service::refresh_in_background(
    std::vector<graph::vertex_id> seeds,
    std::optional<core::solver_config> config) {
  // Refresh token: at most one in-flight refresh per (epoch, seeds, config)
  // key — a burst of stale hits on a hot set must not fan out into a queue
  // of identical background solves that then merely coalesce downstream.
  core::solver_config solver_config = config.value_or(config_.solver);
  grant_worker_budget(solver_config);
  const graph::epoch_graph::ptr epoch = epochs_.current();
  const cache_key key{epoch->fingerprint(),
                      util::hash_range(seeds.data(), seeds.size(), 0x5eed),
                      config_hash(solver_config)};
  {
    const std::lock_guard<std::mutex> lock(refresh_mutex_);
    if (!refreshing_.insert(key).second) {
      ++stale_refreshes_deduped_;
      return;
    }
  }
  const auto release = [this, key] {
    const std::lock_guard<std::mutex> lock(refresh_mutex_);
    refreshing_.erase(key);
  };

  query refresh;
  refresh.seeds = std::move(seeds);
  refresh.config = std::move(config);
  refresh.allow_stale = false;  // the refresh must actually solve (or coalesce)
  executor::task_options opts;
  opts.priority = priority_index(priority_class::background);
  opts.on_dropped = [release](drop_reason) { release(); };
  const bool posted = exec_.try_post(
      [this, refresh = std::move(refresh), release](double queue_wait) mutable {
        util::timer admitted;
        try {
          (void)execute(std::move(refresh), queue_wait, admitted);
        } catch (...) {
          // Best-effort: a failed refresh leaves the stale entry serving.
        }
        release();
      },
      std::move(opts));
  if (!posted) {
    release();  // shed when saturated: a later stale hit may retry
    return;
  }
  ++stale_refreshes_;
}

query_result steiner_service::execute(query q, double queue_wait,
                                      util::timer admitted, exec_context ctx) {
  const util::run_budget* budget = ctx.budget;
  if (budget != nullptr) budget->check();
  query_result out;
  out.query_id = ++query_counter_;
  out.queue_wait_seconds = queue_wait;
  queue_wait_hist_.record(queue_wait);

  // Head sampling: deterministic counter modulo (not RNG) so one in
  // round(1/sample_rate) queries is sampled exactly — testable, and immune
  // to unlucky streaks. Sampled queries get a full trace even when tracing
  // is off; the capture is pure observation, so the solve stays
  // bit-identical either way.
  bool sampled = false;
  if (config_.trace.sample_rate > 0.0) {
    const auto period = static_cast<std::uint64_t>(
        std::llround(1.0 / config_.trace.sample_rate));
    const std::uint64_t tick =
        sample_ticker_.fetch_add(1, std::memory_order_relaxed);
    sampled = period <= 1 || tick % period == 0;
  }

  // Resolve the target epoch at execution time; pinned queries must still be
  // live. The epoch's CSR is deliberately NOT materialized here: cache hits,
  // stale hits and coalesced waits never need it, and materializing a fresh
  // epoch costs O(m).
  const graph::epoch_graph::ptr epoch =
      q.epoch ? epochs_.find(*q.epoch) : epochs_.current();
  if (epoch == nullptr) {
    throw std::invalid_argument(
        "steiner_service: query pinned to a retired or unknown epoch");
  }
  out.epoch = epoch->epoch_id();

  core::solver_config solver_config = q.config.value_or(config_.solver);
  grant_worker_budget(solver_config);
  // QoS plumbing only — budget is deliberately absent from config_hash, so
  // it must be attached after the hash-relevant fields are settled.
  solver_config.budget = budget;
  // Relaxed-determinism opt-in: a cold solve may run phase 1 bucketed. Like
  // budget, growth is absent from config_hash (same output tree), so strict
  // and relaxed queries share cache entries and coalesce with each other.
  if (ctx.relaxed) solver_config.growth = runtime::growth_mode::bucketed;

  // Query-scoped tracing: origin back-dated to admission so the two service
  // spans (admission bookkeeping, queue wait) land before offset "now". Like
  // budget, the trace pointer is absent from config_hash (pure observation).
  std::shared_ptr<obs::query_trace> trace;
  if (config_.trace.enabled || sampled) {
    const std::size_t lanes =
        std::max<std::size_t>(1, solver_config.num_threads);
    trace = std::make_shared<obs::query_trace>(config_.trace, lanes,
                                               admitted.seconds());
    const double pickup = trace->now_seconds();
    const double queued_at = std::max(0.0, pickup - queue_wait);
    trace->add_span({"admission", "service", 0.0, queued_at, 0, 0, 0, 0.0});
    trace->add_span(
        {"queue_wait", "service", queued_at, pickup - queued_at, 0, 0, 0, 0.0});
    solver_config.trace = trace.get();
    if (sampled) ++sampled_traces_;
  }
  // Completion bookkeeping shared by every successful return path: SLO
  // scoring, estimate-error histograms, then trace finalize + retention
  // (slow log for threshold/SLO outliers, flight recorder for samples).
  const auto finish_query = [&](double modelled) {
    const std::size_t cls = priority_index(ctx.priority);
    bool violating = false;
    if (config_.slo.enabled) {
      violating = slo_.violates(cls, out.total_seconds);
      if (violating) ++slo_violations_;
      slo_.record(cls, out.total_seconds);
    }
    if (ctx.estimates.used > 0.0) {
      estimate_error_hist_.record(
          std::abs(out.total_seconds - ctx.estimates.used));
    }
    // Paired model-vs-baseline residuals, recorded only for model-priced
    // admissions so both histograms describe the same query population.
    if (ctx.estimates.model_used) {
      estimate_error_model_hist_.record(
          std::abs(out.total_seconds - ctx.estimates.model));
      estimate_error_baseline_hist_.record(
          std::abs(out.total_seconds - ctx.estimates.baseline));
    }
    if (trace == nullptr) return;
    trace->finalize(ctx.request_id, out.query_id, queue_wait,
                    out.solve_seconds, out.total_seconds, ctx.estimates.used,
                    modelled);
    out.trace = trace;
    const double threshold = config_.trace.slow_query_threshold_seconds;
    const bool slow = threshold > 0.0 && out.total_seconds >= threshold;
    if (slow || violating) {
      // SLO violators are force-retained even under the slow threshold —
      // a violated objective is an outlier by definition.
      ++slow_queries_;
      slow_log_.push(trace);
    } else if (sampled) {
      flight_recorder_.push(trace);
    }
  };

  const std::vector<graph::vertex_id> canonical =
      core::canonicalize_seeds(epoch->num_vertices(), q.seeds);
  const std::uint64_t seed_hash =
      util::hash_range(canonical.data(), canonical.size(), 0x5eed);
  const std::uint64_t cfg_hash = config_hash(solver_config);
  const cache_key key{epoch->fingerprint(), seed_hash, cfg_hash};
  const bool cacheable = config_.enable_cache && q.use_cache;

  const auto finish_from_entry = [&](const cached_solve& entry,
                                     solve_kind kind) {
    out.result = entry.result;
    out.kind = kind;
    out.epoch = entry.epoch_id;
    out.total_seconds = admitted.seconds();
    if (kind == solve_kind::cache_hit) {
      cache_hit_total_hist_.record(out.total_seconds);
    }
    total_hist_.record(out.total_seconds);
    // Solver never ran on this path: no modelled time to compare against.
    finish_query(0.0);
    return out;
  };

  // Single-flight admission for cacheable queries: serve from the cache,
  // wait on an identical in-flight solve, or become the leader that solves.
  std::promise<result_cache::entry_ptr> inflight_promise;
  std::shared_ptr<inflight_interest> interest;
  bool leader = false;
  if (cacheable) {
    if (const auto hit = cache_.find(key, canonical)) {
      ++cache_hits_;
      return finish_from_entry(*hit, solve_kind::cache_hit);
    }
    // Stale-while-warming: the current epoch has no entry yet, but a recent
    // live epoch might — serve its (explicitly marked) tree and refresh the
    // current epoch in the background, so graph edits don't stall readers
    // behind a cold solve. Probe newest-first: when several stale epochs
    // hold the set, the least-stale tree wins.
    if (!q.epoch && q.allow_stale && config_.max_stale_epochs > 0) {
      const auto live = epochs_.live();  // oldest first
      for (auto it = live.rbegin(); it != live.rend(); ++it) {
        const graph::epoch_graph::ptr& old_epoch = *it;
        if (old_epoch->epoch_id() >= epoch->epoch_id()) continue;
        if (epoch->epoch_id() - old_epoch->epoch_id() >
            config_.max_stale_epochs) {
          break;  // everything further back is older still
        }
        const cache_key stale_key{old_epoch->fingerprint(), seed_hash, cfg_hash};
        if (const auto stale =
                cache_.find(stale_key, canonical, /*count_miss=*/false)) {
          ++stale_hits_;
          refresh_in_background(canonical, q.config);
          return finish_from_entry(*stale, solve_kind::stale_hit);
        }
      }
    }
    // Single-flight admission loop: become the leader, or wait on the
    // current one. A waiter resumes the loop when the leader was *cancelled*
    // or expired — that says nothing about this query — and the next pass
    // re-probes the cache and may inherit leadership.
    bool solve_independently = false;
    while (!leader && !solve_independently) {
      std::shared_future<result_cache::entry_ptr> waiter;
      std::shared_ptr<inflight_interest> rider_share;
      {
        const std::lock_guard<std::mutex> lock(inflight_mutex_);
        // Re-check under the lock: a leader publishes to the cache before it
        // deregisters, so missing both cache and registry here is impossible.
        // The outer lookup already counted this query's miss.
        if (const auto hit = cache_.find(key, canonical, /*count_miss=*/false)) {
          ++cache_hits_;
          return finish_from_entry(*hit, solve_kind::cache_hit);
        }
        const auto it = inflight_.find(key);
        if (it != inflight_.end()) {
          waiter = it->second.result;
          rider_share = it->second.interest;
          // Join while still holding the registry lock: joining later would
          // leave a window where the previous last share departs and fires
          // the group-abandon token out from under this live waiter.
          rider_share->join();
        } else {
          leader = true;
          interest = std::make_shared<inflight_interest>();
          // The leader's own requester (when there is one — background
          // refreshes have none) holds a share for the whole solve: its
          // cancellation already stops the solve through its own budget.
          if (budget != nullptr) interest->join();
          inflight_.emplace(
              key,
              inflight_entry{inflight_promise.get_future().share(), interest});
          break;
        }
      }
      // Rider share (joined above, under the lock): released on every exit —
      // result, collision, abandonment, leader failure. When the last share
      // leaves, the group-abandon source fires and the leader's solve stops
      // at its next checkpoint instead of finishing for nobody.
      struct share_guard {
        inflight_interest* share;
        ~share_guard() { share->leave(); }
      } guard{rider_share.get()};
      try {
        // Budget-aware park: a coalesced waiter still honours its own
        // cancellation and deadline while the leader works.
        if (budget != nullptr) {
          while (waiter.wait_for(std::chrono::milliseconds(1)) !=
                 std::future_status::ready) {
            budget->check();
          }
        }
        const result_cache::entry_ptr entry = waiter.get();  // rethrows failures
        if (entry != nullptr && entry->seeds == canonical) {
          ++coalesced_;
          return finish_from_entry(*entry, solve_kind::coalesced);
        }
        // 64-bit key collision with a different seed set: solve independently.
        solve_independently = true;
      } catch (const util::operation_cancelled&) {
        if (budget != nullptr) budget->check();  // our own stop propagates
        // The leader was stopped, not us: retry (and maybe lead).
      }
    }
  }

  // Group abandonment: the leader's solve runs under a budget that also
  // observes the single-flight interest token, so it stops (at a checkpoint)
  // once its requester and every rider have walked away — a requester-less
  // leader (background refresh) with no riders keeps the inert default
  // token and runs to completion for the cache.
  util::run_budget group_budget;
  if (leader && interest != nullptr) {
    if (budget != nullptr) group_budget = *budget;
    group_budget.group_cancel = interest->abandoned.token();
    solver_config.budget = &group_budget;
  }

  // From leadership registration to promise resolution, every throw —
  // including allocation failures building the cache entry — must resolve
  // the inflight promise and deregister, or coalesced waiters hang forever
  // and the key stays poisoned.
  util::timer solve_timer;
  std::shared_ptr<core::solve_artifacts> artifacts;
  result_cache::entry_ptr entry;
  double modelled = 0.0;
  try {
    // A solve is actually happening: materialize the epoch's CSR now.
    // Holding the shared_ptr keeps it valid even if the epoch retires
    // mid-solve.
    const std::shared_ptr<const graph::csr_graph> csr = epoch->csr();
    // Artifacts are only worth their O(|V|) capture cost if warm starts or
    // fragment publishing can ever consume them.
    if (config_.enable_warm_start || config_.enable_fragment_reuse) {
      artifacts = std::make_shared<core::solve_artifacts>();
    }
    bool warmed = false;
    if (config_.enable_warm_start && q.allow_warm_start &&
        canonical.size() > 1) {
      if (const auto match = find_donor(canonical, *epoch)) {
        if (trace != nullptr) {
          trace->add_event("donor_pick",
                           static_cast<double>(match->edits.size()));
        }
        try {
          // Empty edits degenerate to the pure seed-delta repair; otherwise
          // this is a cross-epoch repair over the composed edge delta.
          out.result = core::solve_steiner_tree_edge_warm(
              *csr, canonical, *match->artifacts, match->graph_fingerprint,
              match->edits, solver_config, artifacts.get(), &out.warm);
          out.kind = solve_kind::warm_start;
          ++warm_solves_;
          if (!match->edits.empty()) ++edge_warm_solves_;
          warmed = true;
        } catch (const std::invalid_argument&) {
          // Donor did not match after all (defensive): cold solve below.
          ++warm_fallbacks_;
        }
      }
    }
    if (!warmed) {
      if (config_.distributed.world >= 2) {
        // Distributed cold path (runtime/net/): the solve runs as `world`
        // loopback comm_backend ranks exchanging the same typed frames the
        // TCP mesh carries, with hash-partitioned vertex state and two-phase
        // termination votes. The tree is bit-identical to the in-process
        // solver. No warm capture or fragment assists here — per-rank state
        // is sharded, so there is no whole-graph artifact to keep.
        artifacts.reset();
        std::vector<runtime::net::net_solve_report> reports;
        out.result = runtime::net::solve_loopback(*csr, canonical,
                                                  solver_config,
                                                  config_.distributed.world,
                                                  &reports);
        record_net_reports(reports, trace.get());
        ++distributed_solves_;
      } else {
        // Shared-substrate assists: borrow the fragments of whichever seeds
        // earlier solves settled on this epoch (pre-seeding phase 1 from
        // their surface) and fetch landmark upper bounds to prune the rest.
        // Both are output-neutral; a fragment-assisted solve still counts as
        // cold.
        core::solve_assists assists;
        std::vector<core::sssp_fragment_view> frag_views;
        std::vector<distshare::fragment_ptr> borrowed;
        if (config_.enable_fragment_reuse && q.allow_warm_start &&
            canonical.size() > 1) {
          for (const graph::vertex_id s : canonical) {
            if (distshare::fragment_ptr f =
                    fragments_.borrow(epoch->fingerprint(), s)) {
              frag_views.push_back(f->view());
              borrowed.push_back(std::move(f));
              if (trace != nullptr) {
                trace->add_event("fragment_borrow", static_cast<double>(s));
              }
            }
          }
          assists.fragments = frag_views;
        }
        std::vector<graph::weight_t> prune_bound;
        if (config_.enable_oracle && canonical.size() > 1) {
          prune_bound = oracle_.prune_bounds(epoch->fingerprint(), canonical);
          assists.prune_upper_bound = prune_bound;
          if (prune_bound.empty()) kick_oracle_build(epoch);
          if (trace != nullptr && !prune_bound.empty()) {
            trace->add_event("oracle_prune_bounds",
                             static_cast<double>(prune_bound.size()));
          }
        }
        if (assists.empty()) {
          out.result = artifacts != nullptr
                           ? core::solve_steiner_tree_capture(
                                 *csr, canonical, solver_config, *artifacts)
                           : core::solve_steiner_tree(*csr, canonical,
                                                      solver_config);
        } else {
          out.result = core::solve_steiner_tree_assisted(
              *csr, canonical, assists, solver_config, artifacts.get(),
              &out.assist);
          if (out.assist.fragments_injected > 0) {
            ++fragment_assisted_;
            fragment_hits_ += out.assist.fragments_injected;
            preseeded_vertices_ += out.assist.preseeded_vertices;
          }
          oracle_pruned_visitors_ += out.assist.pruned_visitors;
        }
      }
      out.kind = solve_kind::cold;
      ++cold_solves_;
      if (out.result.growth.mode == runtime::growth_mode::bucketed) {
        ++bucketed_solves_;
        growth_buckets_processed_ += out.result.growth.buckets_processed;
        growth_tiles_ += out.result.growth.tiles_emitted;
        growth_bucket_pruned_ += out.result.growth.bucket_pruned;
        growth_last_delta_.store(out.result.growth.delta,
                                 std::memory_order_relaxed);
        growth_last_tile_threshold_.store(out.result.growth.tile_threshold,
                                          std::memory_order_relaxed);
        if (trace != nullptr) {
          trace->add_event("bucketed_buckets",
                           static_cast<double>(
                               out.result.growth.buckets_processed));
          trace->add_event("bucketed_tiles",
                           static_cast<double>(out.result.growth.tiles_emitted));
        }
      }
      // Feed the admission model's spread baseline (only meaningful when
      // the oracle's lower side is usable; seed_spread returns 0 otherwise).
      if (config_.enable_oracle) {
        const double spread =
            oracle_.seed_spread(epoch->fingerprint(), canonical);
        if (spread > 0.0) {
          spread_sum_.fetch_add(spread, std::memory_order_acq_rel);
          spread_samples_.fetch_add(1, std::memory_order_acq_rel);
        }
      }
    }
    out.solve_seconds = solve_timer.seconds();
    (out.kind == solve_kind::warm_start ? warm_solve_hist_ : cold_solve_hist_)
        .record(out.solve_seconds);
    // Measured-vs-model: what the cost model says this solve should have
    // cost, against what it did cost. Recorded for every real solve so the
    // histograms work with tracing off.
    modelled = out.result.phases.total().sim_seconds(solver_config.costs);
    modelled_solve_hist_.record(modelled);
    model_abs_error_hist_.record(std::abs(out.solve_seconds - modelled));
    // Train the admission cost model on what actually happened: realized
    // path (warm flag) and realized fragment assists, not the admission-time
    // guesses. One O(d^2) RLS update per real solve.
    if (config_.cost_model.enabled) {
      obs::query_features f = build_query_features(
          *epoch, canonical, solver_config,
          out.kind == solve_kind::warm_start);
      f.x[obs::query_features::k_fragments] =
          canonical.empty() ? 0.0
                            : static_cast<double>(out.assist.fragments_injected) /
                                  static_cast<double>(canonical.size());
      cost_model_.observe(f, out.solve_seconds);
    }

    auto fresh = std::make_shared<cached_solve>();
    fresh->seeds = canonical;
    fresh->result = out.result;
    fresh->solve_cost_seconds = out.solve_seconds;
    fresh->epoch_id = epoch->epoch_id();
    entry = std::move(fresh);
  } catch (...) {
    if (leader) {
      // Abandoned-group accounting: the group token fired and the leader's
      // own budget (when it has one) is clean — the solve died because
      // nobody wanted it anymore, not because its requester stopped it.
      if (interest != nullptr && interest->abandoned.cancel_requested() &&
          (budget == nullptr ||
           budget->stop_reason() == util::cancel_reason::none)) {
        ++leader_abandoned_;
      }
      inflight_promise.set_exception(std::current_exception());
      const std::lock_guard<std::mutex> lock(inflight_mutex_);
      inflight_.erase(key);
    }
    throw;
  }

  if (leader) inflight_promise.set_value(entry);
  if (cacheable) cache_.insert(key, entry);
  if (leader) {
    // Deregister only after the cache insert: queries that miss both the
    // cache and this registry entry would otherwise race into extra solves.
    const std::lock_guard<std::mutex> lock(inflight_mutex_);
    inflight_.erase(key);
  }
  if (artifacts != nullptr && !artifacts->empty()) {
    // Publish per-seed fragments before the artifacts move into the donor
    // registry: later overlapping queries pre-seed from them (the epoch
    // fingerprint keys consumers to the exact graph content these labels
    // are valid on).
    if (config_.enable_fragment_reuse) {
      (void)fragments_.publish_from_state(epoch->fingerprint(),
                                          epoch->epoch_id(), artifacts->state,
                                          canonical, out.solve_seconds);
    }
    if (config_.enable_warm_start) {
      remember_donor(std::move(artifacts), epoch->epoch_id());
    }
  }

  out.total_seconds = admitted.seconds();
  total_hist_.record(out.total_seconds);
  finish_query(modelled);
  return out;
}

service_stats steiner_service::stats() const {
  service_stats s;
  s.queries = query_counter_.load();
  s.cold_solves = cold_solves_.load();
  s.warm_solves = warm_solves_.load();
  s.edge_warm_solves = edge_warm_solves_.load();
  s.warm_fallbacks = warm_fallbacks_.load();
  s.cache_hits = cache_hits_.load();
  s.stale_hits = stale_hits_.load();
  s.coalesced = coalesced_.load();
  s.epoch_advances = epoch_advances_.load();
  s.cancelled = cancelled_.load();
  s.deadline_rejected = deadline_rejected_.load();
  s.deadline_expired = deadline_expired_.load();
  s.stale_refreshes = stale_refreshes_.load();
  s.stale_refreshes_deduped = stale_refreshes_deduped_.load();
  s.leader_abandoned = leader_abandoned_.load();
  s.slow_queries = slow_queries_.load();
  s.bucketed_solves = bucketed_solves_.load();
  s.growth_buckets_processed = growth_buckets_processed_.load();
  s.growth_tiles = growth_tiles_.load();
  s.growth_bucket_pruned = growth_bucket_pruned_.load();
  s.growth_last_delta = growth_last_delta_.load();
  s.growth_last_tile_threshold = growth_last_tile_threshold_.load();
  s.fragment_assisted = fragment_assisted_.load();
  s.fragment_hits = fragment_hits_.load();
  s.preseeded_vertices = preseeded_vertices_.load();
  s.oracle_pruned_visitors = oracle_pruned_visitors_.load();
  s.oracle_builds = oracle_.stats().builds;
  s.bound_sharpened = bound_sharpened_.load();
  s.distributed_solves = distributed_solves_.load();
  s.net_bytes_sent = net_bytes_sent_.load();
  s.net_bytes_modelled = net_bytes_modelled_.load();
  s.net_frames_sent = net_frames_sent_.load();
  s.net_supersteps = net_supersteps_.load();
  s.net_vote_rounds = net_vote_rounds_.load();
  s.net_ghost_labels = net_ghost_labels_.load();
  s.cluster_telemetry_samples = cluster_telemetry_samples_.load();
  s.cluster_supersteps = cluster_supersteps_.load();
  s.cluster_straggler_supersteps = cluster_straggler_supersteps_.load();
  s.sampled_traces = sampled_traces_.load();
  s.slo_violations = slo_violations_.load();
  s.model_admissions = model_admissions_.load();
  for (std::size_t p = 0; p < k_priority_classes; ++p) {
    s.admitted_by_priority[p] = admitted_by_prio_[p].load();
    s.shed_by_priority[p] = shed_by_prio_[p].load();
  }
  s.cache = cache_.snapshot();
  s.exec = exec_.stats();
  s.fragments = fragments_.snapshot();
  return s;
}

service_snapshot steiner_service::snapshot() const {
  service_snapshot snap;
  snap.stats = stats();
  snap.queue_wait = queue_wait_hist_.snapshot();
  snap.cold_solve = cold_solve_hist_.snapshot();
  snap.warm_solve = warm_solve_hist_.snapshot();
  snap.cache_hit_total = cache_hit_total_hist_.snapshot();
  snap.total = total_hist_.snapshot();
  snap.modelled_solve = modelled_solve_hist_.snapshot();
  snap.model_abs_error = model_abs_error_hist_.snapshot();
  snap.estimate_error = estimate_error_hist_.snapshot();
  snap.estimate_error_model = estimate_error_model_hist_.snapshot();
  snap.estimate_error_baseline = estimate_error_baseline_hist_.snapshot();
  snap.comm_bytes_modelled = comm_bytes_modelled_hist_.snapshot();
  snap.comm_bytes_measured = comm_bytes_measured_hist_.snapshot();
  snap.cluster_superstep_seconds = cluster_superstep_seconds_hist_.snapshot();
  snap.cluster_comm_wait_seconds = cluster_comm_wait_seconds_hist_.snapshot();
  snap.cost_model = cost_model_.snapshot();
  snap.slo = slo_.snapshot();
  return snap;
}

}  // namespace dsteiner::service
