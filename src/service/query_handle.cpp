#include "service/query_handle.hpp"

#include <stdexcept>

namespace dsteiner::service {

detail::request_state& query_handle::state() const {
  if (state_ == nullptr) {
    throw std::logic_error("query_handle: empty handle");
  }
  return *state_;
}

std::optional<query_result> query_handle::poll() const {
  detail::request_state& st = state();
  if (st.future.wait_for(std::chrono::seconds(0)) !=
      std::future_status::ready) {
    return std::nullopt;
  }
  if (st.status.load(std::memory_order_acquire) != request_status::done) {
    return std::nullopt;  // terminal without a result; status()/get() say why
  }
  return st.future.get();  // shared_future: returns a const&, copied out
}

query_result query_handle::get() const { return state().future.get(); }

std::shared_ptr<const obs::query_trace> query_handle::trace() const {
  detail::request_state& st = state();
  if (st.future.wait_for(std::chrono::seconds(0)) !=
          std::future_status::ready ||
      st.status.load(std::memory_order_acquire) != request_status::done) {
    return nullptr;
  }
  return st.future.get().trace;  // shared_future: const& access, ptr copied
}

std::optional<obs::trace_summary> query_handle::trace_summary() const {
  const std::shared_ptr<const obs::query_trace> t = trace();
  if (t == nullptr) return std::nullopt;
  return t->summary();
}

}  // namespace dsteiner::service
