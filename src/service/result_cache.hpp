// Sharded LRU cache of finished Steiner solves.
//
// Keyed by (graph fingerprint, canonical seed set, solver-config hash): the
// tree is a pure function of (graph, seeds) — the solver's determinism
// guarantee — but the per-phase metrics a result carries depend on the
// runtime configuration, so config participates in the key and two configs
// never share an entry. (Within one config the cached metrics still reflect
// whichever path — cold or warm repair — produced the entry; see
// cached_solve.) Keys are 64-bit hashes; the stored canonical seed
// list is compared on lookup so a hash collision degrades to a miss, never a
// wrong tree.
//
// Sharding bounds lock contention under concurrent workers: a key's shard is
// derived from its hash, each shard holds an independent LRU list + index
// under its own mutex.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/steiner_solver.hpp"
#include "core/warm_start.hpp"
#include "graph/types.hpp"

namespace dsteiner::service {

struct cache_key {
  std::uint64_t graph_fingerprint = 0;
  std::uint64_t seed_hash = 0;    ///< over the canonical (sorted) seed list
  std::uint64_t config_hash = 0;

  friend bool operator==(const cache_key&, const cache_key&) = default;
};

struct cache_key_hash {
  [[nodiscard]] std::size_t operator()(const cache_key& key) const noexcept;
};

/// A finished solve. Note the stored `result.phases` reflect the path that
/// produced the entry (a warm-start repair caches its reduced repair
/// metrics, not cold-equivalent ones); the tree itself is path-independent.
/// Warm-start artifacts are deliberately *not* part of a cache entry — they
/// are O(|V|) each and live only in the service's bounded donor registry.
struct cached_solve {
  std::vector<graph::vertex_id> seeds;  ///< canonical (sorted, deduplicated)
  core::steiner_result result;
  /// Wall seconds the producing solve took — the recompute cost this entry
  /// saves. Drives cost-aware eviction: cheap entries go first.
  double solve_cost_seconds = 0.0;
  /// Graph epoch the solve ran against. Entries from epochs older than the
  /// live one are preferred eviction victims and are purged wholesale when
  /// their epoch retires.
  std::uint64_t epoch_id = 0;
};

class result_cache {
 public:
  struct config {
    std::size_t capacity = 64;  ///< entries across all shards
    std::size_t shards = 4;
    /// Cost-aware eviction: when a shard overflows, the victim is the
    /// *cheapest-to-recompute* entry among the `eviction_window` least
    /// recently used (ties broken towards the LRU tail). 1 = plain LRU.
    std::size_t eviction_window = 4;
  };

  struct stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t retired = 0;  ///< entries purged by epoch retirement
    std::size_t entries = 0;    ///< current occupancy
  };

  using entry_ptr = std::shared_ptr<const cached_solve>;

  result_cache() : result_cache(config{}) {}
  explicit result_cache(config cfg);

  /// Lookup; `canonical_seeds` guards against hash collisions. A hit
  /// refreshes the entry's LRU position. Pass `count_miss = false` for
  /// re-checks that already counted their miss (the service's single-flight
  /// recheck), so the miss counter reflects queries, not probe attempts.
  [[nodiscard]] entry_ptr find(const cache_key& key,
                               std::span<const graph::vertex_id> canonical_seeds,
                               bool count_miss = true);

  /// Stat-neutral existence probe for admission cost estimation: no LRU
  /// promotion, no hit/miss counting — predicting a path must not perturb
  /// the statistics or the eviction order the prediction is about.
  [[nodiscard]] bool peek(
      const cache_key& key,
      std::span<const graph::vertex_id> canonical_seeds) const;

  /// Inserts (or refreshes) an entry. Over capacity, the victim is chosen
  /// epoch-first, then by cost:
  ///   1. any entry from an epoch older than the live epoch (stale) — the
  ///      cheapest such entry shard-wide; retiring epochs always precedes
  ///      touching live-epoch entries, so the sole live-epoch entry is never
  ///      evicted while stale ones remain;
  ///   2. otherwise the cheapest entry (by solve_cost_seconds) within the
  ///      tail eviction window — LRU softened by recompute cost, so an
  ///      expensive solve survives a burst of cheap one-off queries.
  void insert(const cache_key& key, entry_ptr entry);

  /// Marks the epoch whose entries eviction must protect. Entries whose
  /// epoch_id is older become preferred victims.
  void set_live_epoch(std::uint64_t epoch_id) noexcept;
  [[nodiscard]] std::uint64_t live_epoch() const noexcept;

  /// Epoch-retirement eviction: purges every entry with epoch_id <
  /// first_live (counted in stats.retired, not stats.evictions). Returns the
  /// number purged.
  std::size_t retire_epochs_before(std::uint64_t first_live);

  [[nodiscard]] stats snapshot() const;
  void clear();

  [[nodiscard]] std::size_t capacity() const noexcept { return config_.capacity; }
  [[nodiscard]] std::size_t num_shards() const noexcept { return shards_.size(); }

 private:
  struct shard {
    mutable std::mutex mutex;
    std::list<std::pair<cache_key, entry_ptr>> lru;  ///< front = most recent
    std::unordered_map<cache_key,
                       std::list<std::pair<cache_key, entry_ptr>>::iterator,
                       cache_key_hash>
        index;
    stats counters;
    /// Lower bound on the epochs present in this shard (exact after
    /// retire_epochs_before, conservative after evictions). Lets eviction
    /// skip the stale scan in the all-live steady state.
    std::uint64_t min_epoch = std::numeric_limits<std::uint64_t>::max();
  };

  [[nodiscard]] shard& shard_for(const cache_key& key);
  [[nodiscard]] const shard& shard_for(const cache_key& key) const;

  config config_;
  std::size_t per_shard_capacity_ = 1;
  std::vector<std::unique_ptr<shard>> shards_;
  std::atomic<std::uint64_t> live_epoch_{0};
};

}  // namespace dsteiner::service
