#include "io/dataset.hpp"

#include <stdexcept>

#include "graph/generators.hpp"

namespace dsteiner::io {

const std::vector<dataset_spec>& dataset_specs() {
  // Scales chosen so the whole benchmark suite runs on one core in minutes
  // while preserving Table III's size ordering and weight ranges.
  static const std::vector<dataset_spec> specs = {
      {"WDC", "WebDataCommons12", 17, 16, 1, 500000, 0x10dc, 3.5e9, 257e9},
      {"CLW", "ClueWeb12", 16, 16, 1, 100000, 0x20c1, 978e6, 85e9},
      {"UKW", "UKWeb07", 15, 18, 1, 75000, 0x3007, 105e6, 7.5e9},
      {"FRS", "Friendster", 15, 12, 1, 50000, 0x40f5, 66e6, 3.6e9},
      {"LVJ", "LiveJournal", 14, 9, 1, 5000, 0x5017, 4.8e6, 85.7e6},
      {"PTN", "Patent", 14, 5, 1, 5000, 0x6097, 2.7e6, 28e6},
      {"MCO", "MiCo", 12, 11, 1, 2000, 0x70c0, 100e3, 2.2e6},
      {"CTS", "CiteSeer", 11, 2, 1, 1000, 0x80c7, 3.3e3, 9.4e3},
  };
  return specs;
}

const dataset_spec& spec_for(std::string_view key) {
  for (const auto& spec : dataset_specs()) {
    if (spec.key == key) return spec;
  }
  throw std::out_of_range("unknown dataset key: " + std::string(key));
}

graph::edge_list build_topology(const dataset_spec& spec, int scale_adjust) {
  graph::rmat_params params;
  const std::int64_t scale =
      static_cast<std::int64_t>(spec.scale) + scale_adjust;
  if (scale < 4) throw std::invalid_argument("dataset scale adjusted below 4");
  params.scale = static_cast<std::uint64_t>(scale);
  params.edge_factor = spec.edge_factor;
  params.seed = spec.rmat_seed;
  return graph::generate_rmat(params);
}

dataset load_dataset(std::string_view key, int scale_adjust) {
  const dataset_spec& spec = spec_for(key);
  graph::edge_list edges = build_topology(spec, scale_adjust);
  graph::assign_uniform_weights(edges, spec.weight_lo, spec.weight_hi,
                                spec.rmat_seed ^ 0x5eedULL);
  return {spec, graph::csr_graph(edges)};
}

}  // namespace dsteiner::io
