// Synthetic mirrors of the paper's Table III datasets.
//
// The original graphs (Web Data Commons 2012 at 257 B directed edges,
// ClueWeb12, UK Web 2007, Friendster, LiveJournal, Patent, MiCo, CiteSeer)
// are multi-terabyte and/or license-gated; none are available offline. Each
// mirror is an RMAT graph (Graph500 skew — the same family used to model
// web/social degree distributions) scaled ~3 orders of magnitude down, with
// the paper's per-dataset edge-weight range applied. Relative size ordering,
// skewed degrees and weight ranges are preserved; see DESIGN.md §2 for the
// substitution rationale.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/edge_list.hpp"
#include "graph/types.hpp"

namespace dsteiner::io {

struct dataset_spec {
  std::string key;         ///< paper abbreviation: WDC, CLW, UKW, FRS, LVJ, PTN, MCO, CTS
  std::string paper_name;  ///< e.g. "LiveJournal"
  std::uint64_t scale;     ///< RMAT scale: |V| = 2^scale
  std::uint64_t edge_factor;
  graph::weight_t weight_lo;
  graph::weight_t weight_hi;  ///< Table III per-dataset range upper bound
  std::uint64_t rmat_seed;

  /// Paper-reported full-size numbers (for the Table III comparison print).
  double paper_vertices;
  double paper_arcs;  ///< 2|E|
};

/// All eight mirrors, ordered largest to smallest as in Table III.
[[nodiscard]] const std::vector<dataset_spec>& dataset_specs();

/// Spec lookup by key ("LVJ"); throws std::out_of_range for unknown keys.
[[nodiscard]] const dataset_spec& spec_for(std::string_view key);

/// A loaded dataset: weighted symmetric CSR graph.
struct dataset {
  dataset_spec spec;
  graph::csr_graph graph;
};

/// Generates the mirror graph (deterministic per spec).
/// `scale_adjust` shifts the RMAT scale (e.g. -1 halves |V|) for quick tests.
[[nodiscard]] dataset load_dataset(std::string_view key, int scale_adjust = 0);

/// Topology only (weights all 1): used by the Fig. 7 experiment, which
/// re-assigns weight ranges over a fixed topology.
[[nodiscard]] graph::edge_list build_topology(const dataset_spec& spec,
                                              int scale_adjust = 0);

}  // namespace dsteiner::io
