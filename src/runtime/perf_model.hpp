// Simulated-parallel-time cost model and per-phase metrics.
//
// The paper reports wall-clock time on up to 512 nodes; this repository runs
// every rank in one process, so wall time alone cannot exhibit scaling. The
// engine therefore *also* advances a simulated clock: execution proceeds in
// rounds, each round every rank drains up to `batch` visitors, and the clock
// advances by the maximum per-rank work in that round (critical path) plus a
// latency charge for the round's remote messages. Collectives charge an
// alpha-beta (latency + bandwidth) term. Strong-scaling shape — who is the
// bottleneck phase, how speedup degrades with rank count, load imbalance from
// skewed degrees — is captured exactly; absolute seconds come from the
// calibration constant `unit_seconds` and are documented as simulated in
// EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace dsteiner::runtime {

/// Work-unit charges for the simulated clock. Defaults loosely calibrated so
/// the bundled mini datasets land in the same "seconds" magnitude the paper
/// reports for the full-size graphs.
struct cost_model {
  double visit_cost = 1.0;          ///< units per processed visitor
  double reject_cost = 0.15;        ///< units per pre_visit rejection (arrival check)
  double send_cost = 0.25;          ///< units per message emission, charged to the sender
  double remote_msg_cost = 0.5;     ///< units per remote message (injection+delivery)
  double collective_alpha = 200.0;  ///< units per collective call, x log2(p)
  double collective_per_byte = 0.002;  ///< units per byte moved by a collective
  /// Units per sequential-step work item (e.g. one MST heap operation). A
  /// heap op is far cheaper than a full visitor dispatch (deserialization +
  /// callback + scatter), hence the ~20x discount against visit_cost.
  double sequential_unit = 0.05;
  double unit_seconds = 1.0e-4;     ///< wall seconds represented by one unit
};

/// Metrics accumulated for one computation phase (one engine run or one
/// collective step). Mirrors the stacked-bar decomposition of Figs. 3-6.
struct phase_metrics {
  double wall_seconds = 0.0;
  double sim_units = 0.0;  ///< simulated parallel time, cost_model units

  std::uint64_t rounds = 0;
  std::uint64_t visitors_processed = 0;  ///< visit() executions
  std::uint64_t visitors_skipped = 0;    ///< superseded visitors dropped at dequeue
  std::uint64_t previsit_rejections = 0; ///< visitors dropped on arrival
  std::uint64_t messages_local = 0;      ///< visitor sends within a rank
  std::uint64_t messages_remote = 0;     ///< visitor sends crossing ranks
  std::uint64_t collective_calls = 0;
  std::uint64_t collective_bytes = 0;
  std::uint64_t queue_peak_items = 0;    ///< max simultaneously queued visitors
  std::uint64_t queue_peak_bytes = 0;
  // Bucketed (delta-stepping) growth only; both stay 0 in strict order, so
  // strict-mode bit-identity across engines/thread counts is unaffected.
  std::uint64_t buckets_processed = 0;   ///< distinct buckets drained
  std::uint64_t bucket_pruned = 0;       ///< visitors dropped by the bucket prune

  [[nodiscard]] std::uint64_t messages_total() const noexcept {
    return messages_local + messages_remote;
  }

  [[nodiscard]] double sim_seconds(const cost_model& costs) const noexcept {
    return sim_units * costs.unit_seconds;
  }

  /// Accumulates another phase into this one (for end-to-end totals).
  void merge(const phase_metrics& other) noexcept;
};

/// Ordered per-phase breakdown keyed by phase name; preserves the paper's
/// phase order (Voronoi Cell, Local Min Dist. Edge, Global Min Dist. Edge,
/// MST, Global Edge Pruning, Steiner Tree Edge).
class phase_breakdown {
 public:
  phase_metrics& phase(const std::string& name);
  [[nodiscard]] const phase_metrics* find(const std::string& name) const;

  [[nodiscard]] phase_metrics total() const;
  [[nodiscard]] const std::map<std::string, phase_metrics>& by_name() const noexcept {
    return phases_;
  }

 private:
  std::map<std::string, phase_metrics> phases_;
};

/// Canonical phase names, matching the paper's chart legends.
namespace phase_names {
inline constexpr const char* voronoi = "Voronoi Cell";
inline constexpr const char* local_min_edge = "Local Min Dist. Edge";
inline constexpr const char* global_min_edge = "Global Min Dist. Edge";
inline constexpr const char* mst = "MST";
inline constexpr const char* pruning = "Global Edge Pruning";
inline constexpr const char* tree_edge = "Steiner Tree Edge";
}  // namespace phase_names

}  // namespace dsteiner::runtime
