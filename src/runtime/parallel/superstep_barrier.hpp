// Counting superstep barrier with termination detection.
//
// The threaded engine runs in supersteps separated by barriers. Each arrival
// contributes (a) the number of messages its ranks still have outstanding —
// mailbox backlog plus messages just emitted into SPSC channels — and (b) the
// maximum simulated work any of its ranks performed this superstep. The last
// arriver of an epoch folds the contributions into the epoch aggregate and
// wakes everyone; all parties observe the *same* aggregate, so the engine's
// termination decision ("global quiescence: zero outstanding messages") is
// taken consistently by every worker with no extra round trip.
//
// Epochs are stamped by a monotonically increasing counter: a party arriving
// for epoch e sleeps until the counter passes e, which makes the barrier
// trivially reusable across the thousands of supersteps of one engine run.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace dsteiner::runtime::parallel {

class superstep_barrier {
 public:
  /// One epoch's folded contributions, identical for every party.
  struct aggregate {
    std::uint64_t outstanding = 0;  ///< undelivered messages, summed
    double max_work = 0.0;          ///< per-rank simulated work, maximum
    /// Cooperative-stop votes, OR-folded: workers may observe a cancellation
    /// or deadline at different instants, so the barrier is what turns those
    /// individual observations into one consistent stop decision — every
    /// party sees the same flag and exits the same superstep (no worker left
    /// waiting on a barrier its peers abandoned).
    bool cancel = false;
    /// Lowest mailbox bucket over all parties, min-folded (bucketed growth
    /// only; UINT64_MAX is both "no bucket" and the fold identity, so the
    /// default-constructed reset between epochs is already correct). Lets
    /// every worker agree on the bucket to drain in the next phase.
    std::uint64_t min_bucket = UINT64_MAX;
  };

  explicit superstep_barrier(std::size_t parties);

  /// Contributes to the current epoch and blocks until all parties arrive.
  /// Returns the epoch's aggregate.
  aggregate arrive_and_wait(std::uint64_t outstanding, double work,
                            bool cancel = false,
                            std::uint64_t min_bucket = UINT64_MAX);

  [[nodiscard]] std::size_t parties() const noexcept { return parties_; }
  [[nodiscard]] std::uint64_t epoch() const;

 private:
  const std::size_t parties_;
  mutable std::mutex mutex_;
  std::condition_variable released_;
  std::size_t arrived_ = 0;
  std::uint64_t epoch_ = 0;
  aggregate pending_{};  ///< contributions of the in-progress epoch
  aggregate result_{};   ///< aggregate of the last completed epoch
};

}  // namespace dsteiner::runtime::parallel
