// Threaded visitor engine: real per-rank workers over lock-free channels.
//
// Executes the same Handler/Visitor contract as the cooperative
// visitor_engine, but on a worker pool so a single cold solve scales with
// cores. Ranks are striped over W workers (rank r runs on worker r % W); a
// rank's mailbox and vertex state are touched only by its worker, preserving
// the owner discipline the sequential simulation already obeys. Inter-rank
// traffic flows through one SPSC channel per ordered rank pair — the worker
// running the sender rank is the sole producer, the receiver's worker the
// sole consumer.
//
// Execution proceeds in supersteps of two phases split by barriers:
//
//   phase A (deliver): each rank drains its inbound channels in sender-rank
//     order (per-sender FIFO preserved by the channel), runs pre_visit as the
//     arrival admission check, and stable-merges survivors into its priority
//     mailbox.                                       -- barrier --
//   phase B (compute): each rank pops up to batch_size visitors from its
//     mailbox and runs visit; emissions to the rank itself deliver
//     immediately (same-superstep consumption, like the async engine's local
//     sends), emissions to other ranks enter the SPSC channels.
//                                                    -- counting barrier --
//
// The phase-B barrier is the termination detector: every worker contributes
// its ranks' outstanding messages (mailbox backlog + channel emissions this
// superstep) and the epoch aggregate is zero exactly at global quiescence.
// Because producers only push in phase B and consumers only pop in phase A,
// channels are never touched concurrently from both ends of an epoch, and the
// per-epoch message count is exact, not a racy sample.
//
// Determinism: the (rank, superstep) schedule is independent of the worker
// count — each rank always drains full channels in sender order and then
// processes exactly batch_size visitors in mailbox (priority, sequence)
// order. Runs are therefore bit-identical across thread counts, including
// all phase metrics; and the solve output equals the sequential engine's
// because every state update is a lexicographic minimum with a unique fixed
// point (see steiner_state.hpp). Cost accounting differences vs the async
// engine: remote-message delivery work is charged to the receiving rank at
// drain time (the following superstep) instead of at send time.
//
// growth_mode::bucketed swaps the phase-B batch for delta-stepping: the
// phase-A barrier min-folds every rank's lowest mailbox bucket, so all
// workers agree on the current bucket, and phase B drains that *whole*
// bucket per rank (no batch cap — far fewer barriers per solve, which is
// the perf win on power-law graphs). Relaxed priorities never fall below
// the bucket being drained, so the drain terminates; the output tree is
// still the unique lexicographic fixed point, but the schedule — and the
// metrics — depend on bucket widths rather than being bit-identical to
// strict order. When the landmark oracle caps useful priorities
// (priority_limit), a current bucket past the cap proves every remaining
// visitor useless: all mailboxes are cleared and the run terminates early.
//
// batch_size == 0 opts into adaptive batching (strict order only): worker 0
// measures its phase-B compute vs barrier-B wait each superstep and grows
// the shared batch when the barrier dominates (amortize synchronization) or
// shrinks it when compute dominates (bound priority inversion). By design
// this trades the metrics' bit-identity for self-tuning throughput.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "graph/types.hpp"
#include "obs/engine_probe.hpp"
#include "runtime/engine_config.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/partition.hpp"
#include "runtime/perf_model.hpp"
#include "runtime/parallel/spsc_channel.hpp"
#include "runtime/parallel/superstep_barrier.hpp"
#include "runtime/parallel/worker_pool.hpp"
#include "util/timer.hpp"

namespace dsteiner::runtime::parallel {

template <typename Visitor, typename Handler>
class thread_engine {
 public:
  thread_engine(const partitioner& parts, Handler& handler,
                engine_config config)
      : parts_(parts), handler_(&handler), config_(config) {
    bucketed_ = config_.growth == growth_mode::bucketed &&
                config_.bucket_delta > 0;
    adaptive_ = !bucketed_ && config_.batch_size == 0;
    if (config_.batch_size == 0) config_.batch_size = 64;
    const auto p = static_cast<std::size_t>(parts.num_ranks());
    mailboxes_.reserve(p);
    for (std::size_t r = 0; r < p; ++r) {
      mailboxes_.emplace_back(config.policy,
                              bucketed_ ? config_.bucket_delta : 0);
    }
    channels_.reserve(p * p);
    for (std::size_t i = 0; i < p * p; ++i) {
      channels_.push_back(std::make_unique<spsc_channel<Visitor>>());
    }
    stats_ = std::vector<rank_stats>(p);
  }

  /// Send interface handed to Handler::visit (mirrors visitor_engine).
  class emitter {
   public:
    emitter(thread_engine& engine, int from_rank) noexcept
        : engine_(&engine), from_rank_(from_rank) {}

    void to_vertex(Visitor v) {
      engine_->send(std::move(v), from_rank_,
                    engine_->parts_.owner(v.target()));
    }

    void to_rank(int rank, Visitor v) {
      engine_->send(std::move(v), from_rank_, rank);
    }

   private:
    thread_engine* engine_;
    int from_rank_;
  };

  /// Injects an initial visitor; staged in the owner's self-channel so the
  /// first superstep's phase A admits it on the owner's worker (pre_visit
  /// must never run off-thread). Call only before run().
  void seed(Visitor v) {
    const int rank = parts_.owner(v.target());
    channel(rank, rank).push(std::move(v));
    ++stats_[static_cast<std::size_t>(rank)].messages_local;
    ++seeded_;
  }

  /// Processes to global quiescence and returns the phase metrics. Throws
  /// util::operation_cancelled when config.budget trips: the vote is folded
  /// through the phase-B barrier, so every worker abandons the run at the
  /// same superstep and the pool is returned idle (partial per-rank state is
  /// simply discarded with the engine).
  [[nodiscard]] phase_metrics run() {
    util::timer wall;
    if (config_.budget != nullptr) config_.budget->check();
    if (seeded_ == 0) {
      metrics_.wall_seconds = wall.seconds();
      return metrics_;
    }
    const auto p = static_cast<std::size_t>(parts_.num_ranks());
    worker_pool* pool = config_.pool;
    std::optional<worker_pool> transient;
    if (pool == nullptr) {
      const std::size_t want = config_.num_threads != 0
                                   ? config_.num_threads
                                   : worker_pool::default_threads();
      transient.emplace(std::min(want, p));
      pool = &*transient;
    }
    const std::size_t workers = std::min(pool->size(), p);
    superstep_barrier barrier(workers);
    pool->run([this, &barrier, workers, p](std::size_t w) {
      if (w >= workers) return;  // pool larger than the rank count
      worker_loop(w, workers, p, barrier);
    });
    if (cancelled_) {
      // Recomputing the reason here is safe: tokens are sticky and the
      // deadline is monotone, so whatever made a worker vote still holds.
      const util::cancel_reason why = config_.budget->stop_reason();
      throw util::operation_cancelled(why != util::cancel_reason::none
                                          ? why
                                          : util::cancel_reason::cancelled);
    }
    for (const rank_stats& st : stats_) {
      metrics_.visitors_processed += st.processed;
      metrics_.visitors_skipped += st.skipped;
      metrics_.previsit_rejections += st.previsit_rejections;
      metrics_.messages_local += st.messages_local;
      metrics_.messages_remote += st.messages_remote;
      metrics_.bucket_pruned += st.bucket_pruned;
    }
    metrics_.wall_seconds = wall.seconds();
    return metrics_;
  }

  [[nodiscard]] const phase_metrics& metrics() const noexcept {
    return metrics_;
  }

 private:
  /// Per-rank accounting, touched only by the rank's worker; padded so
  /// neighbouring ranks on different workers do not false-share.
  struct alignas(64) rank_stats {
    double work = 0.0;  ///< simulated work this superstep, reset at barrier B
    std::uint64_t processed = 0;
    std::uint64_t skipped = 0;
    std::uint64_t previsit_rejections = 0;
    std::uint64_t messages_local = 0;
    std::uint64_t messages_remote = 0;
    std::uint64_t sent_remote_step = 0;  ///< channel emissions this superstep
    std::uint64_t bucket_pruned = 0;     ///< visitors dropped by bucket prune
    /// Bucket this rank is draining in the current phase B; written by the
    /// owning worker before its visits, read by the same worker's send()
    /// for light/heavy classification — never shared across threads.
    std::uint64_t current_bucket = UINT64_MAX;
    // Tracing deltas, reset after each sample. Maintained unconditionally
    // (one add on paths that already touch this cache line) so the compute
    // loop stays branch-free; they are only *read* when a probe is attached.
    std::uint32_t visits_step = 0;   ///< visit dispatches this superstep
    std::uint32_t drained_step = 0;  ///< channel admissions this superstep
    std::uint32_t light_step = 0;    ///< relaxations into the current bucket
    std::uint32_t heavy_step = 0;    ///< relaxations into later buckets
  };

  [[nodiscard]] spsc_channel<Visitor>& channel(int from, int to) noexcept {
    const auto p = static_cast<std::size_t>(parts_.num_ranks());
    return *channels_[static_cast<std::size_t>(from) * p +
                      static_cast<std::size_t>(to)];
  }

  void worker_loop(std::size_t w, std::size_t workers, std::size_t p,
                   superstep_barrier& barrier) {
    // Tracing is sampled per worker into probe lane w (this thread is the
    // lane's only writer). All clock reads are gated on the probe so the
    // untraced path costs nothing beyond two per-rank counter increments.
    obs::engine_probe* probe = config_.probe;
    std::uint32_t superstep = 0;
    // Timed when tracing, or on worker 0 when adaptive batching needs the
    // compute/barrier-wait ratio.
    const bool timed = probe != nullptr || (adaptive_ && w == 0);
    std::uint64_t last_bucket = k_no_bucket;  // worker 0: transition counter
    util::timer step_timer;  // read only when `timed`
    for (;;) {
      // Phase A: admit everything the previous superstep (or seeding) put
      // into our ranks' channels. Channels are quiescent here — producers
      // only push in phase B — so the drain is exact and deterministic.
      if (timed) step_timer.restart();
      for (std::size_t r = w; r < p; r += workers) {
        drain_channels(static_cast<int>(r), static_cast<int>(p));
      }
      const double t_drained = timed ? step_timer.seconds() : 0.0;
      // Bucketed: fold this worker's lowest mailbox bucket through the
      // barrier so phase B agrees on one global bucket to drain. After the
      // phase-A drain every in-flight visitor sits in a mailbox, so the
      // fold sees *all* remaining work — the minimum is exact.
      std::uint64_t my_min = k_no_bucket;
      if (bucketed_) {
        for (std::size_t r = w; r < p; r += workers) {
          my_min = std::min(my_min, mailboxes_[r].min_bucket());
        }
      }
      const auto agg_a = barrier.arrive_and_wait(0, 0.0, false, my_min);
      const std::uint64_t bucket = agg_a.min_bucket;
      const double t_computing = timed ? step_timer.seconds() : 0.0;

      if (bucketed_ && bucket != k_no_bucket &&
          bucket * config_.bucket_delta > config_.priority_limit) {
        // Every remaining visitor has priority >= bucket * delta, beyond
        // the best landmark upper bound: none can improve a cell. Drop
        // them all; the next barrier sees zero outstanding and terminates.
        for (std::size_t r = w; r < p; r += workers) {
          stats_[r].bucket_pruned += mailboxes_[r].size();
          mailboxes_[r].clear();
        }
      }
      if (w == 0 && bucketed_ && bucket != k_no_bucket &&
          bucket != last_bucket) {
        ++metrics_.buckets_processed;
        last_bucket = bucket;
      }

      // Phase B: compute. Local emissions are consumable this superstep;
      // remote emissions wait in channels for the next phase A.
      std::uint64_t outstanding = 0;
      double work_max = 0.0;
      std::uint32_t visits_sum = 0;
      std::uint32_t sent_sum = 0;
      std::uint32_t drained_sum = 0;
      std::uint32_t light_sum = 0;
      std::uint32_t heavy_sum = 0;
      for (std::size_t r = w; r < p; r += workers) {
        if (bucketed_) {
          process_bucket(static_cast<int>(r), bucket);
        } else {
          process_batch(static_cast<int>(r));
        }
        rank_stats& st = stats_[r];
        outstanding += mailboxes_[r].size() + st.sent_remote_step;
        work_max = std::max(work_max, st.work);
        if (probe != nullptr) {
          // Per-rank row (channel depth, per-rank skew) before the
          // superstep-scoped counters reset. Quiet ranks are skipped.
          visits_sum += st.visits_step;
          sent_sum += static_cast<std::uint32_t>(st.sent_remote_step);
          drained_sum += st.drained_step;
          light_sum += st.light_step;
          heavy_sum += st.heavy_step;
          const std::size_t backlog = mailboxes_[r].size();
          if (st.visits_step != 0 || st.drained_step != 0 ||
              st.sent_remote_step != 0 || backlog != 0) {
            obs::superstep_sample s;
            s.superstep = superstep;
            s.rank = static_cast<std::int32_t>(r);
            s.visitors = st.visits_step;
            s.sent = static_cast<std::uint32_t>(st.sent_remote_step);
            s.drained = st.drained_step;
            s.backlog = static_cast<std::uint32_t>(
                std::min<std::size_t>(backlog, UINT32_MAX));
            s.work_units = static_cast<float>(st.work);
            probe->record(w, s);
          }
        }
        st.work = 0.0;
        st.sent_remote_step = 0;
        st.visits_step = 0;
        st.drained_step = 0;
        st.light_step = 0;
        st.heavy_step = 0;
      }
      // Cancellation checkpoint: each worker votes with its own observation
      // and the barrier's OR-fold makes the stop decision unanimous.
      const bool stop_vote =
          config_.budget != nullptr && config_.budget->stop_requested();
      const double t_computed = timed ? step_timer.seconds() : 0.0;
      const auto agg = barrier.arrive_and_wait(outstanding, work_max, stop_vote);
      if (probe != nullptr) {
        // Aggregate row for this worker's whole superstep: compute is the
        // drain plus the batch, barrier wait is both stalls.
        obs::superstep_sample s;
        s.superstep = superstep;
        s.rank = -1;
        s.visitors = visits_sum;
        s.sent = sent_sum;
        s.drained = drained_sum;
        s.work_units = static_cast<float>(work_max);
        s.compute_seconds =
            static_cast<float>(t_drained + (t_computed - t_computing));
        s.barrier_wait_seconds = static_cast<float>(
            (t_computing - t_drained) + (step_timer.seconds() - t_computed));
        if (bucketed_) {
          s.bucket = bucket;
          s.light = light_sum;
          s.heavy = heavy_sum;
        }
        probe->record(w, s);
      }
      if (adaptive_ && w == 0) {
        // Self-tuning batch size from this superstep's measured ratio:
        // barrier-wait-dominated supersteps mean the batch is too small to
        // amortize synchronization; compute-dominated ones mean it can
        // shrink to tighten priority order. Workers pick the new size up at
        // their next phase B (the barrier already orders the accesses; the
        // atomic is for TSan-visible publication).
        const double compute = t_computed - t_computing;
        const double wait = step_timer.seconds() - t_computed;
        std::size_t b = auto_batch_.load(std::memory_order_relaxed);
        if (wait > 0.5 * compute && b < 8192) {
          b *= 2;
        } else if (wait < 0.05 * compute && b > 16) {
          b /= 2;
        }
        auto_batch_.store(b, std::memory_order_relaxed);
      }
      ++superstep;
      if (agg.cancel) {
        if (w == 0) cancelled_ = true;  // sole writer; read after pool joins
        return;
      }
      if (w == 0) {
        ++metrics_.rounds;
        metrics_.sim_units += agg.max_work;
        if (agg.outstanding > metrics_.queue_peak_items) {
          metrics_.queue_peak_items = agg.outstanding;
          metrics_.queue_peak_bytes = agg.outstanding * sizeof(Visitor);
        }
      }
      if (agg.outstanding == 0) return;
    }
  }

  void drain_channels(int r, int p) {
    rank_stats& st = stats_[static_cast<std::size_t>(r)];
    auto& box = mailboxes_[static_cast<std::size_t>(r)];
    Visitor v;
    for (int s = 0; s < p; ++s) {
      auto& ch = channel(s, r);
      while (ch.try_pop(v)) {
        if (s != r) st.work += config_.costs.remote_msg_cost;
        if (!handler_->pre_visit(v, r)) {
          ++st.previsit_rejections;
          st.work += config_.costs.reject_cost;
          continue;
        }
        ++st.drained_step;
        box.push(std::move(v));
      }
    }
  }

  void process_batch(int r) {
    rank_stats& st = stats_[static_cast<std::size_t>(r)];
    auto& box = mailboxes_[static_cast<std::size_t>(r)];
    emitter out(*this, r);
    const std::size_t batch = adaptive_
                                  ? auto_batch_.load(std::memory_order_relaxed)
                                  : config_.batch_size;
    for (std::size_t step = 0; step < batch && !box.empty(); ++step) {
      Visitor v = box.pop();
      ++st.visits_step;
      if (handler_->visit(v, r, out)) {
        ++st.processed;
        st.work += config_.costs.visit_cost;
      } else {
        ++st.skipped;
        st.work += config_.costs.reject_cost;
      }
    }
  }

  /// Bucketed phase B: drain the rank's *entire* current bucket. Same-rank
  /// relaxations can only land in this bucket or later (priorities are
  /// monotone under relaxation), so the loop terminates; later buckets wait
  /// for the next superstep's global minimum.
  void process_bucket(int r, std::uint64_t bucket) {
    rank_stats& st = stats_[static_cast<std::size_t>(r)];
    st.current_bucket = bucket;
    auto& box = mailboxes_[static_cast<std::size_t>(r)];
    emitter out(*this, r);
    while (!box.empty() && box.min_bucket() == bucket) {
      Visitor v = box.pop();
      ++st.visits_step;
      if (handler_->visit(v, r, out)) {
        ++st.processed;
        st.work += config_.costs.visit_cost;
      } else {
        ++st.skipped;
        st.work += config_.costs.reject_cost;
      }
    }
  }

  void send(Visitor v, int from_rank, int to_rank) {
    rank_stats& st = stats_[static_cast<std::size_t>(from_rank)];
    st.work += config_.costs.send_cost;
    if (bucketed_) {
      if (v.priority() / config_.bucket_delta == st.current_bucket) {
        ++st.light_step;
      } else {
        ++st.heavy_step;
      }
    }
    if (to_rank == from_rank) {
      // Same-rank delivery stays on this worker: admit immediately so the
      // visitor is consumable within this superstep's batch, mirroring the
      // async engine's local sends.
      ++st.messages_local;
      if (!handler_->pre_visit(v, to_rank)) {
        ++st.previsit_rejections;
        st.work += config_.costs.reject_cost;
        return;
      }
      mailboxes_[static_cast<std::size_t>(to_rank)].push(std::move(v));
      return;
    }
    ++st.messages_remote;
    ++st.sent_remote_step;
    channel(from_rank, to_rank).push(std::move(v));
  }

  partitioner parts_;
  Handler* handler_;
  engine_config config_;
  bool bucketed_ = false;
  bool adaptive_ = false;  ///< batch_size == 0: self-tuning batch (strict only)
  std::atomic<std::size_t> auto_batch_{64};
  std::vector<mailbox<Visitor>> mailboxes_;
  std::vector<std::unique_ptr<spsc_channel<Visitor>>> channels_;  // [from*p+to]
  std::vector<rank_stats> stats_;
  std::uint64_t seeded_ = 0;
  bool cancelled_ = false;  ///< set by worker 0 when the barrier votes to stop
  phase_metrics metrics_;
};

}  // namespace dsteiner::runtime::parallel
