// Persistent worker pool backing the threaded visitor engine.
//
// One pool is created per solve (or borrowed from the caller) and reused by
// every engine phase — Voronoi growth, the local min-edge scan, tree-edge
// walk-backs — so a solve pays thread start-up once, not once per phase.
// run() executes one job on every worker and blocks until all return; jobs
// receive their worker id so the engine can stripe ranks over workers.
//
// Generation-stamped dispatch: workers sleep on a generation counter, run()
// bumps it and waits for the completion count. The pool is deliberately not a
// task queue — the engine owns scheduling; the pool only owns threads.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dsteiner::runtime::parallel {

class worker_pool {
 public:
  using job = std::function<void(std::size_t worker_id)>;

  /// Spawns `num_threads` workers (0 = one per hardware thread, at least 1).
  explicit worker_pool(std::size_t num_threads);

  worker_pool(const worker_pool&) = delete;
  worker_pool& operator=(const worker_pool&) = delete;

  /// Wakes idle workers and joins them.
  ~worker_pool();

  [[nodiscard]] std::size_t size() const noexcept { return threads_.size(); }

  /// Runs `j(worker_id)` on every worker and blocks until all complete.
  /// Exceptions escaping a job terminate (engine jobs do not throw); do not
  /// call run() from inside a job.
  void run(const job& j);

  /// Default worker count for a budget of 0: hardware concurrency, >= 1.
  [[nodiscard]] static std::size_t default_threads() noexcept;

 private:
  void worker_loop(std::size_t worker_id);

  std::mutex mutex_;
  std::condition_variable wake_;      ///< workers wait for a new generation
  std::condition_variable finished_;  ///< run() waits for completions
  const job* current_ = nullptr;
  std::uint64_t generation_ = 0;
  std::size_t completed_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace dsteiner::runtime::parallel
