#include "runtime/parallel/superstep_barrier.hpp"

#include <algorithm>
#include <stdexcept>

namespace dsteiner::runtime::parallel {

superstep_barrier::superstep_barrier(std::size_t parties) : parties_(parties) {
  if (parties == 0) {
    throw std::invalid_argument("superstep_barrier: parties must be > 0");
  }
}

std::uint64_t superstep_barrier::epoch() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return epoch_;
}

superstep_barrier::aggregate superstep_barrier::arrive_and_wait(
    std::uint64_t outstanding, double work, bool cancel,
    std::uint64_t min_bucket) {
  std::unique_lock<std::mutex> lock(mutex_);
  pending_.outstanding += outstanding;
  pending_.max_work = std::max(pending_.max_work, work);
  pending_.cancel = pending_.cancel || cancel;
  pending_.min_bucket = std::min(pending_.min_bucket, min_bucket);
  if (++arrived_ == parties_) {
    result_ = pending_;
    pending_ = {};
    arrived_ = 0;
    ++epoch_;
    released_.notify_all();
    return result_;
  }
  const std::uint64_t my_epoch = epoch_;
  released_.wait(lock, [&] { return epoch_ != my_epoch; });
  return result_;
}

}  // namespace dsteiner::runtime::parallel
