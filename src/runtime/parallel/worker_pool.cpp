#include "runtime/parallel/worker_pool.hpp"

#include <algorithm>

namespace dsteiner::runtime::parallel {

std::size_t worker_pool::default_threads() noexcept {
  return std::max(1u, std::thread::hardware_concurrency());
}

worker_pool::worker_pool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = default_threads();
  threads_.reserve(num_threads);
  for (std::size_t w = 0; w < num_threads; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

worker_pool::~worker_pool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& t : threads_) t.join();
}

void worker_pool::run(const job& j) {
  std::unique_lock<std::mutex> lock(mutex_);
  current_ = &j;
  completed_ = 0;
  ++generation_;
  wake_.notify_all();
  finished_.wait(lock, [this] { return completed_ == threads_.size(); });
  current_ = nullptr;
}

void worker_pool::worker_loop(std::size_t worker_id) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const job* j = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] {
        return stopping_ || generation_ != seen_generation;
      });
      if (stopping_) return;
      seen_generation = generation_;
      j = current_;
    }
    (*j)(worker_id);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++completed_;
    }
    finished_.notify_one();
  }
}

}  // namespace dsteiner::runtime::parallel
