// Lock-free single-producer / single-consumer channel.
//
// The threaded engine keeps one channel per ordered rank pair (s, r): the
// worker running rank s is the only producer, the worker running rank r the
// only consumer (a rank is pinned to one worker, so the SPSC contract holds
// for any thread count). This replaces the shared mailbox heap for inter-rank
// traffic — the hot path is one release store per push and one acquire load
// per pop, with no locks and no CAS on the fast path.
//
// Layout: an unbounded linked list of fixed-size blocks. The producer fills
// the tail block and publishes progress through the block's `filled` counter;
// when a block is full it links a fresh one through the atomic `next`
// pointer. The consumer reads the head block up to `filled`, then follows
// `next`. A single spare-block slot recycles the most recently drained block
// back to the producer, so steady-state traffic allocates nothing.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <utility>

namespace dsteiner::runtime::parallel {

template <typename T, std::size_t BlockCapacity = 256>
class spsc_channel {
  static_assert(BlockCapacity >= 2, "spsc_channel: block too small");

 public:
  spsc_channel() : head_(new block()), tail_(head_) {}

  spsc_channel(const spsc_channel&) = delete;
  spsc_channel& operator=(const spsc_channel&) = delete;

  ~spsc_channel() {
    block* b = head_;
    while (b != nullptr) {
      block* next = b->next.load(std::memory_order_relaxed);
      delete b;
      b = next;
    }
    delete spare_.load(std::memory_order_relaxed);
  }

  /// Producer side. Never blocks; allocates only when the tail block is full
  /// and no recycled block is available.
  void push(T value) {
    block* b = tail_;
    std::size_t i = tail_filled_;
    if (i == BlockCapacity) {
      block* fresh = take_spare();
      if (fresh == nullptr) fresh = new block();
      // Link first, then switch: the consumer discovers the block via `next`.
      b->next.store(fresh, std::memory_order_release);
      tail_ = fresh;
      b = fresh;
      i = 0;
    }
    b->slots[i] = std::move(value);
    // Publish the slot; pairs with the consumer's acquire load of `filled`.
    b->filled.store(i + 1, std::memory_order_release);
    tail_filled_ = i + 1;
  }

  /// Consumer side. Returns false when no published item is available.
  bool try_pop(T& out) {
    block* b = head_;
    std::size_t i = head_read_;
    if (i == BlockCapacity) {
      block* next = b->next.load(std::memory_order_acquire);
      if (next == nullptr) return false;  // producer still filling a new block
      recycle(b);
      head_ = b = next;
      head_read_ = i = 0;
    }
    if (i >= b->filled.load(std::memory_order_acquire)) return false;
    out = std::move(b->slots[i]);
    head_read_ = i + 1;
    return true;
  }

 private:
  struct block {
    std::array<T, BlockCapacity> slots{};
    std::atomic<std::size_t> filled{0};
    std::atomic<block*> next{nullptr};
  };

  [[nodiscard]] block* take_spare() {
    return spare_.exchange(nullptr, std::memory_order_acquire);
  }

  void recycle(block* b) {
    b->filled.store(0, std::memory_order_relaxed);
    b->next.store(nullptr, std::memory_order_relaxed);
    block* expected = nullptr;
    // Release: the resets above must be visible to the producer that takes
    // the block. The slot holds at most one spare; extra blocks are freed.
    if (!spare_.compare_exchange_strong(expected, b, std::memory_order_release,
                                        std::memory_order_relaxed)) {
      delete b;
    }
  }

  // Consumer-only fields, then producer-only, then the shared recycle slot —
  // separated so producer and consumer do not false-share a cache line.
  alignas(64) block* head_;
  std::size_t head_read_ = 0;
  alignas(64) block* tail_;
  std::size_t tail_filled_ = 0;
  alignas(64) std::atomic<block*> spare_{nullptr};
};

}  // namespace dsteiner::runtime::parallel
