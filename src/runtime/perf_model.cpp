#include "runtime/perf_model.hpp"

#include <algorithm>

namespace dsteiner::runtime {

void phase_metrics::merge(const phase_metrics& other) noexcept {
  wall_seconds += other.wall_seconds;
  sim_units += other.sim_units;
  rounds += other.rounds;
  visitors_processed += other.visitors_processed;
  visitors_skipped += other.visitors_skipped;
  previsit_rejections += other.previsit_rejections;
  messages_local += other.messages_local;
  messages_remote += other.messages_remote;
  collective_calls += other.collective_calls;
  collective_bytes += other.collective_bytes;
  queue_peak_items = std::max(queue_peak_items, other.queue_peak_items);
  queue_peak_bytes = std::max(queue_peak_bytes, other.queue_peak_bytes);
  buckets_processed += other.buckets_processed;
  bucket_pruned += other.bucket_pruned;
}

phase_metrics& phase_breakdown::phase(const std::string& name) {
  return phases_[name];
}

const phase_metrics* phase_breakdown::find(const std::string& name) const {
  const auto it = phases_.find(name);
  return it == phases_.end() ? nullptr : &it->second;
}

phase_metrics phase_breakdown::total() const {
  phase_metrics sum;
  for (const auto& [name, metrics] : phases_) sum.merge(metrics);
  return sum;
}

}  // namespace dsteiner::runtime
