// Partitioned view of a CSR graph, including HavoqGT-style vertex delegates.
//
// HavoqGT's key scalability device for scale-free graphs (§IV motivation,
// [19]) is the *vertex delegate*: a vertex whose degree exceeds a threshold
// has its edge list distributed across all ranks instead of living solely on
// its owner. The owner (the "controller") keeps the vertex state; when the
// vertex scatters to its neighbours, the controller broadcasts one relay per
// rank and each rank enumerates only its slice of the adjacency — turning an
// O(degree) hotspot on one rank into O(degree / p) work everywhere.
//
// Here the underlying CSR is shared process memory, so a "slice" is the
// arithmetic subsequence of arc indices congruent to the rank id modulo p;
// no arcs are copied, but all work accounting and message routing honour the
// slice discipline.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/types.hpp"
#include "runtime/partition.hpp"

namespace dsteiner::runtime {

struct dist_graph_config {
  int num_ranks = 16;
  partition_scheme scheme = partition_scheme::hash;
  bool use_delegates = true;
  /// Vertices with degree >= threshold become delegates. 0 disables.
  std::uint64_t delegate_threshold = 1024;
};

class dist_graph {
 public:
  dist_graph(const graph::csr_graph& graph, const dist_graph_config& config);

  [[nodiscard]] const graph::csr_graph& graph() const noexcept { return *graph_; }
  [[nodiscard]] const partitioner& parts() const noexcept { return parts_; }
  [[nodiscard]] int num_ranks() const noexcept { return parts_.num_ranks(); }
  [[nodiscard]] int owner(graph::vertex_id v) const noexcept { return parts_.owner(v); }

  [[nodiscard]] bool is_delegate(graph::vertex_id v) const noexcept {
    return !delegate_.empty() && delegate_[v];
  }
  [[nodiscard]] std::uint64_t delegate_count() const noexcept { return delegate_count_; }

  /// Vertices owned by `rank`, ascending.
  [[nodiscard]] std::span<const graph::vertex_id> local_vertices(int rank) const noexcept {
    return local_vertices_[static_cast<std::size_t>(rank)];
  }

  /// Applies fn(target, weight) to every arc of v (ownership-agnostic).
  template <typename Fn>
  void for_each_arc(graph::vertex_id v, Fn&& fn) const {
    const auto nbrs = graph_->neighbors(v);
    const auto wts = graph_->weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) fn(nbrs[i], wts[i]);
  }

  /// Applies fn(target, weight) to the arcs of delegate (or plain) vertex v
  /// that belong to `rank`'s slice: arc positions congruent to rank mod p.
  template <typename Fn>
  void for_each_arc_in_slice(graph::vertex_id v, int rank, Fn&& fn) const {
    const auto nbrs = graph_->neighbors(v);
    const auto wts = graph_->weights(v);
    const auto p = static_cast<std::size_t>(num_ranks());
    for (std::size_t i = static_cast<std::size_t>(rank); i < nbrs.size(); i += p) {
      fn(nbrs[i], wts[i]);
    }
  }

  /// Applies fn(target, weight) to the arcs of v at positions [begin, end)
  /// (end clamped to the degree). Used by bucketed growth's edge tiles: one
  /// tile is one contiguous arc range of a high-degree vertex, so a hub's
  /// scatter splits into independent work items spread over ranks.
  template <typename Fn>
  void for_each_arc_in_range(graph::vertex_id v, std::uint64_t begin,
                             std::uint64_t end, Fn&& fn) const {
    const auto nbrs = graph_->neighbors(v);
    const auto wts = graph_->weights(v);
    const std::size_t hi = std::min<std::size_t>(end, nbrs.size());
    for (std::size_t i = begin; i < hi; ++i) fn(nbrs[i], wts[i]);
  }

  /// Number of ranks holding a non-empty slice of v's adjacency.
  [[nodiscard]] int slice_rank_count(graph::vertex_id v) const noexcept {
    const std::uint64_t deg = graph_->degree(v);
    const auto p = static_cast<std::uint64_t>(num_ranks());
    return static_cast<int>(deg < p ? deg : p);
  }

  /// Bytes of per-rank bookkeeping (local vertex lists + delegate bitmap);
  /// contributes to the Fig. 8 "algorithm state" bar.
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept;

 private:
  const graph::csr_graph* graph_;
  partitioner parts_;
  std::vector<std::vector<graph::vertex_id>> local_vertices_;  // per rank
  std::vector<bool> delegate_;
  std::uint64_t delegate_count_ = 0;
};

}  // namespace dsteiner::runtime
