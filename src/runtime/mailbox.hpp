// Per-rank visitor mailboxes.
//
// The paper's key optimization (§IV, §V-C) is replacing HavoqGT's default
// FIFO message queue with a *priority* queue that gives precedence to
// messages from vertices at lower tentative distance — approximating
// Dijkstra's settling order inside an asynchronous Bellman-Ford and cutting
// message volume by up to 22x (Fig. 6). Both policies are provided so the
// Fig. 5/6/7 experiments can compare them.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <vector>

namespace dsteiner::runtime {

enum class queue_policy {
  fifo,      ///< HavoqGT default: arrival order
  priority,  ///< paper's optimization: lowest Visitor::priority() first
};

/// `mailbox::min_bucket()` when the box is empty (also the min-fold identity
/// for the barrier's bucket aggregation).
inline constexpr std::uint64_t k_no_bucket = UINT64_MAX;

/// Single-rank mailbox. `Visitor` must expose `std::uint64_t priority()
/// const`. Priority ties are broken by arrival order (stable), keeping runs
/// deterministic.
///
/// A non-zero `bucket_delta` switches the box into delta-stepping bucket
/// mode (overriding `policy`): visitors are grouped by `priority() / delta`
/// into FIFO buckets and popped from the lowest non-empty bucket. Cheaper
/// than the heap (amortized O(1) per push/pop within a bucket) and exposes
/// `min_bucket()` so the engines can drain exactly one bucket per round.
template <typename Visitor>
class mailbox {
 public:
  explicit mailbox(queue_policy policy = queue_policy::priority,
                   std::uint64_t bucket_delta = 0)
      : policy_(policy), delta_(bucket_delta) {}

  [[nodiscard]] queue_policy policy() const noexcept { return policy_; }
  [[nodiscard]] bool bucketed() const noexcept { return delta_ != 0; }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }
  [[nodiscard]] std::size_t size() const noexcept {
    if (delta_ != 0) return bucket_count_;
    return policy_ == queue_policy::fifo ? fifo_.size() : heap_.size();
  }

  /// Bucket index of the lowest-priority queued visitor; k_no_bucket when
  /// empty or not in bucket mode.
  [[nodiscard]] std::uint64_t min_bucket() const noexcept {
    if (delta_ == 0 || buckets_.empty()) return k_no_bucket;
    return buckets_.begin()->first;
  }

  void push(Visitor v) {
    if (delta_ != 0) {
      buckets_[v.priority() / delta_].push_back(std::move(v));
      ++bucket_count_;
      return;
    }
    if (policy_ == queue_policy::fifo) {
      fifo_.push_back(std::move(v));
      return;
    }
    heap_.push_back({v.priority(), next_sequence_++, std::move(v)});
    std::push_heap(heap_.begin(), heap_.end(), heap_greater);
  }

  [[nodiscard]] Visitor pop() {
    if (delta_ != 0) {
      auto it = buckets_.begin();
      Visitor v = std::move(it->second.front());
      it->second.pop_front();
      if (it->second.empty()) buckets_.erase(it);
      --bucket_count_;
      return v;
    }
    if (policy_ == queue_policy::fifo) {
      Visitor v = std::move(fifo_.front());
      fifo_.pop_front();
      return v;
    }
    std::pop_heap(heap_.begin(), heap_.end(), heap_greater);
    Visitor v = std::move(heap_.back().visitor);
    heap_.pop_back();
    return v;
  }

  void clear() {
    fifo_.clear();
    heap_.clear();
    buckets_.clear();
    bucket_count_ = 0;
  }

 private:
  struct heap_entry {
    std::uint64_t priority;
    std::uint64_t sequence;
    Visitor visitor;
  };

  // std::push/pop_heap build a max-heap; invert the comparison for a min-heap
  // on (priority, sequence).
  static bool heap_greater(const heap_entry& a, const heap_entry& b) noexcept {
    if (a.priority != b.priority) return a.priority > b.priority;
    return a.sequence > b.sequence;
  }

  queue_policy policy_;
  std::uint64_t delta_;  ///< bucket width; 0 = not in bucket mode
  std::deque<Visitor> fifo_;
  std::vector<heap_entry> heap_;
  std::uint64_t next_sequence_ = 0;
  // Bucket mode: ordered map keeps the lowest bucket at begin(); each bucket
  // is FIFO so intra-bucket order is arrival order (deterministic per
  // engine/thread-count, though not across them — that's the point).
  std::map<std::uint64_t, std::deque<Visitor>> buckets_;
  std::size_t bucket_count_ = 0;
};

}  // namespace dsteiner::runtime
