// Per-rank visitor mailboxes.
//
// The paper's key optimization (§IV, §V-C) is replacing HavoqGT's default
// FIFO message queue with a *priority* queue that gives precedence to
// messages from vertices at lower tentative distance — approximating
// Dijkstra's settling order inside an asynchronous Bellman-Ford and cutting
// message volume by up to 22x (Fig. 6). Both policies are provided so the
// Fig. 5/6/7 experiments can compare them.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <vector>

namespace dsteiner::runtime {

enum class queue_policy {
  fifo,      ///< HavoqGT default: arrival order
  priority,  ///< paper's optimization: lowest Visitor::priority() first
};

/// Single-rank mailbox. `Visitor` must expose `std::uint64_t priority()
/// const`. Priority ties are broken by arrival order (stable), keeping runs
/// deterministic.
template <typename Visitor>
class mailbox {
 public:
  explicit mailbox(queue_policy policy = queue_policy::priority)
      : policy_(policy) {}

  [[nodiscard]] queue_policy policy() const noexcept { return policy_; }
  [[nodiscard]] bool empty() const noexcept {
    return policy_ == queue_policy::fifo ? fifo_.empty() : heap_.empty();
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return policy_ == queue_policy::fifo ? fifo_.size() : heap_.size();
  }

  void push(Visitor v) {
    if (policy_ == queue_policy::fifo) {
      fifo_.push_back(std::move(v));
      return;
    }
    heap_.push_back({v.priority(), next_sequence_++, std::move(v)});
    std::push_heap(heap_.begin(), heap_.end(), heap_greater);
  }

  [[nodiscard]] Visitor pop() {
    if (policy_ == queue_policy::fifo) {
      Visitor v = std::move(fifo_.front());
      fifo_.pop_front();
      return v;
    }
    std::pop_heap(heap_.begin(), heap_.end(), heap_greater);
    Visitor v = std::move(heap_.back().visitor);
    heap_.pop_back();
    return v;
  }

  void clear() {
    fifo_.clear();
    heap_.clear();
  }

 private:
  struct heap_entry {
    std::uint64_t priority;
    std::uint64_t sequence;
    Visitor visitor;
  };

  // std::push/pop_heap build a max-heap; invert the comparison for a min-heap
  // on (priority, sequence).
  static bool heap_greater(const heap_entry& a, const heap_entry& b) noexcept {
    if (a.priority != b.priority) return a.priority > b.priority;
    return a.sequence > b.sequence;
  }

  queue_policy policy_;
  std::deque<Visitor> fifo_;
  std::vector<heap_entry> heap_;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace dsteiner::runtime
