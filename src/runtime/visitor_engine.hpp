// Asynchronous vertex-centric visitor engine — the HavoqGT stand-in.
//
// HavoqGT executes algorithms as vertex callbacks: events ("visitors") are
// queued per rank, a visitor's pre_visit runs when it arrives at the target
// vertex's owner, and its visit runs when dequeued, possibly pushing further
// visitors (§IV). Computation completes when every queue has drained.
//
// This engine reproduces those semantics in one process. Ranks take turns in
// a cooperative round-robin; each round a rank drains up to `batch_size`
// visitors. Because delivery is in-process, messages emitted by rank r are
// immediately visible to later ranks in the same round — modelling the
// communication/computation overlap of asynchronous MPI. A bulk-synchronous
// mode (deliveries deferred to the round boundary) is provided for the
// async-vs-BSP ablation, and execution_mode::parallel_threads swaps in the
// threaded backend (runtime/parallel/thread_engine.hpp) with real per-rank
// workers — run_visitors() dispatches.
//
// The simulated clock advances per round by the *maximum* per-rank work —
// the critical path — so per-phase simulated times exhibit genuine strong-
// scaling behaviour (load imbalance, diminishing work per rank) even though
// everything runs on one core.
//
// Handler concept:
//   bool pre_visit(const Visitor&, int rank);
//     Arrival-time state relaxation at the target's owner. Return true to
//     enqueue the visitor for its scatter step (Alg. 4 lines 5-9).
//   bool visit(const Visitor&, int rank, Emitter&);
//     Dequeued step; typically re-checks state and scatters to neighbours
//     (Alg. 4 lines 10-13). Return false if superseded (skipped).
//
// Visitor concept:
//   graph::vertex_id target() const;   // routing key
//   std::uint64_t priority() const;    // mailbox priority (lower first)
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "graph/types.hpp"
#include "obs/engine_probe.hpp"
#include "runtime/engine_config.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/partition.hpp"
#include "runtime/perf_model.hpp"
#include "runtime/parallel/thread_engine.hpp"
#include "util/timer.hpp"

namespace dsteiner::runtime {

template <typename Visitor, typename Handler>
class visitor_engine {
 public:
  visitor_engine(const partitioner& parts, Handler& handler, engine_config config)
      : parts_(parts), handler_(&handler), config_(config) {
    // batch_size 0 opts into the threaded engine's adaptive batching; the
    // cooperative engine has no barrier to adapt against, so it just runs
    // the default.
    if (config_.batch_size == 0) config_.batch_size = 64;
    bucketed_ = config_.growth == growth_mode::bucketed &&
                config_.bucket_delta > 0;
    mailboxes_.reserve(static_cast<std::size_t>(parts.num_ranks()));
    for (int r = 0; r < parts.num_ranks(); ++r) {
      mailboxes_.emplace_back(config.policy,
                              bucketed_ ? config_.bucket_delta : 0);
    }
    round_work_.assign(static_cast<std::size_t>(parts.num_ranks()), 0.0);
  }

  /// Lightweight send interface handed to Handler::visit.
  class emitter {
   public:
    emitter(visitor_engine& engine, int from_rank) noexcept
        : engine_(&engine), from_rank_(from_rank) {}

    /// Route to the owner of visitor.target().
    void to_vertex(Visitor v) {
      engine_->send(std::move(v), from_rank_,
                    engine_->parts_.owner(v.target()));
    }

    /// Route to an explicit rank (delegate relays).
    void to_rank(int rank, Visitor v) {
      engine_->send(std::move(v), from_rank_, rank);
    }

   private:
    visitor_engine* engine_;
    int from_rank_;
  };

  /// Injects an initial visitor (the do_traversal seeding step); charged as a
  /// local message on the target's owner.
  void seed(Visitor v) {
    const int rank = parts_.owner(v.target());
    send(std::move(v), rank, rank);
  }

  /// Processes to global quiescence and returns the phase metrics. Throws
  /// util::operation_cancelled at a round boundary when config.budget trips
  /// (cooperative cancellation/deadline checkpoint).
  [[nodiscard]] phase_metrics run() {
    util::timer wall;
    const int p = parts_.num_ranks();
    while (pending_ > 0 || !staged_.empty()) {
      if (config_.budget != nullptr) config_.budget->check();
      // Pre-round counter snapshot so tracing can report per-round deltas.
      // Taken only when a probe is attached; the untraced path pays nothing.
      const bool sampling = config_.probe != nullptr;
      const std::uint64_t visited0 =
          metrics_.visitors_processed + metrics_.visitors_skipped;
      const std::uint64_t sent0 =
          metrics_.messages_local + metrics_.messages_remote;
      const double round_wall0 = sampling ? wall.seconds() : 0.0;
      ++metrics_.rounds;
      std::fill(round_work_.begin(), round_work_.end(), 0.0);
      round_light_ = round_heavy_ = 0;
      std::uint64_t round_bucket = k_no_bucket;
      if (bucketed_) {
        // The round drains the globally lowest bucket. The prune decision
        // additionally folds BSP-staged priorities so a staged lower-bucket
        // visitor is never dropped by mistake.
        for (const auto& box : mailboxes_) {
          round_bucket = std::min(round_bucket, box.min_bucket());
        }
        std::uint64_t min_all = round_bucket;
        for (const auto& [to, v] : staged_) {
          min_all = std::min(min_all, v.priority() / config_.bucket_delta);
        }
        if (min_all != k_no_bucket &&
            min_all * config_.bucket_delta > config_.priority_limit) {
          // Every remaining visitor has priority >= min_all * delta, beyond
          // the best landmark upper bound: nothing left can improve a cell,
          // so drop it all and terminate.
          metrics_.bucket_pruned += pending_ + staged_.size();
          for (auto& box : mailboxes_) box.clear();
          staged_.clear();
          pending_ = 0;
          break;
        }
        if (round_bucket != k_no_bucket && round_bucket != last_bucket_) {
          ++metrics_.buckets_processed;
          last_bucket_ = round_bucket;
        }
        current_bucket_ = round_bucket;
      }
      for (int r = 0; r < p; ++r) {
        auto& box = mailboxes_[static_cast<std::size_t>(r)];
        // Bucketed: drain the whole current bucket (relaxations only ever
        // land in this bucket or later, so the loop terminates). Strict:
        // batch_size visitors in priority order.
        for (std::size_t step = 0; !box.empty(); ++step) {
          if (bucketed_) {
            if (box.min_bucket() != round_bucket) break;
          } else if (step >= config_.batch_size) {
            break;
          }
          Visitor v = box.pop();
          --pending_;
          emitter out(*this, r);
          if (handler_->visit(v, r, out)) {
            ++metrics_.visitors_processed;
            round_work_[static_cast<std::size_t>(r)] += config_.costs.visit_cost;
          } else {
            ++metrics_.visitors_skipped;
            round_work_[static_cast<std::size_t>(r)] += config_.costs.reject_cost;
          }
        }
      }
      if (config_.mode == execution_mode::bsp && !staged_.empty()) {
        std::vector<std::pair<int, Visitor>> batch;
        batch.swap(staged_);
        for (auto& [to, v] : batch) deliver(std::move(v), to);
      }
      const double round_max =
          *std::max_element(round_work_.begin(), round_work_.end());
      metrics_.sim_units += round_max;
      if (sampling) {
        // One aggregate row per round (the engine runs on a single thread,
        // so lane 0 is the only writer) plus per-rank work/backlog rows for
        // ranks that actually did something — these become the counter
        // tracks in the exported trace.
        obs::superstep_sample agg;
        agg.superstep = static_cast<std::uint32_t>(metrics_.rounds - 1);
        agg.rank = -1;
        agg.visitors = static_cast<std::uint32_t>(
            metrics_.visitors_processed + metrics_.visitors_skipped - visited0);
        agg.sent = static_cast<std::uint32_t>(
            metrics_.messages_local + metrics_.messages_remote - sent0);
        agg.backlog = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(pending_ + staged_.size(), UINT32_MAX));
        agg.work_units = static_cast<float>(round_max);
        agg.compute_seconds =
            static_cast<float>(wall.seconds() - round_wall0);
        if (bucketed_) {
          agg.bucket = current_bucket_;
          agg.light = round_light_;
          agg.heavy = round_heavy_;
        }
        config_.probe->record(0, agg);
        for (int r = 0; r < p; ++r) {
          const double work = round_work_[static_cast<std::size_t>(r)];
          const std::size_t backlog =
              mailboxes_[static_cast<std::size_t>(r)].size();
          if (work <= 0.0 && backlog == 0) continue;
          obs::superstep_sample s;
          s.superstep = agg.superstep;
          s.rank = r;
          s.backlog = static_cast<std::uint32_t>(
              std::min<std::size_t>(backlog, UINT32_MAX));
          s.work_units = static_cast<float>(work);
          config_.probe->record(0, s);
        }
      }
    }
    metrics_.wall_seconds = wall.seconds();
    return metrics_;
  }

  [[nodiscard]] const phase_metrics& metrics() const noexcept { return metrics_; }

 private:
  void send(Visitor v, int from_rank, int to_rank) {
    // Emission work (serialization, queue injection) belongs to the sender —
    // this is what makes a high-degree scatter expensive on its home rank
    // and what vertex delegates spread out.
    round_work_[static_cast<std::size_t>(from_rank)] += config_.costs.send_cost;
    if (bucketed_) {
      // Delta-stepping nomenclature: a relaxation landing in the bucket
      // currently being drained is "light" (re-examined this round), one
      // landing in a later bucket is "heavy" (settled once).
      if (v.priority() / config_.bucket_delta == current_bucket_) {
        ++round_light_;
      } else {
        ++round_heavy_;
      }
    }
    if (to_rank == from_rank) {
      ++metrics_.messages_local;
    } else {
      ++metrics_.messages_remote;
      round_work_[static_cast<std::size_t>(to_rank)] +=
          config_.costs.remote_msg_cost;
    }
    if (config_.mode == execution_mode::bsp) {
      staged_.emplace_back(to_rank, std::move(v));
      note_peak();
      return;
    }
    deliver(std::move(v), to_rank);
  }

  void deliver(Visitor v, int to_rank) {
    if (!handler_->pre_visit(v, to_rank)) {
      ++metrics_.previsit_rejections;
      round_work_[static_cast<std::size_t>(to_rank)] += config_.costs.reject_cost;
      return;
    }
    mailboxes_[static_cast<std::size_t>(to_rank)].push(std::move(v));
    ++pending_;
    note_peak();
  }

  void note_peak() noexcept {
    const std::uint64_t items = pending_ + staged_.size();
    if (items > metrics_.queue_peak_items) {
      metrics_.queue_peak_items = items;
      metrics_.queue_peak_bytes = items * sizeof(Visitor);
    }
  }

  partitioner parts_;
  Handler* handler_;
  engine_config config_;
  bool bucketed_ = false;
  std::vector<mailbox<Visitor>> mailboxes_;
  std::vector<std::pair<int, Visitor>> staged_;  // BSP-deferred deliveries
  std::vector<double> round_work_;
  std::uint64_t pending_ = 0;
  std::uint64_t current_bucket_ = k_no_bucket;  // bucket being drained
  std::uint64_t last_bucket_ = k_no_bucket;     // for buckets_processed
  std::uint32_t round_light_ = 0;
  std::uint32_t round_heavy_ = 0;
  phase_metrics metrics_;
};

/// Convenience wrapper: seeds `initial` visitors and runs to quiescence.
/// Dispatches on execution mode: parallel_threads runs on the threaded
/// backend (runtime/parallel/), async/bsp on the cooperative engine above.
template <typename Visitor, typename Handler>
[[nodiscard]] phase_metrics run_visitors(const partitioner& parts,
                                         Handler& handler,
                                         std::vector<Visitor> initial,
                                         const engine_config& config) {
  if (config.mode == execution_mode::parallel_threads) {
    parallel::thread_engine<Visitor, Handler> engine(parts, handler, config);
    for (auto& v : initial) engine.seed(std::move(v));
    return engine.run();
  }
  visitor_engine<Visitor, Handler> engine(parts, handler, config);
  for (auto& v : initial) engine.seed(std::move(v));
  return engine.run();
}

}  // namespace dsteiner::runtime
