#include "runtime/dist_graph.hpp"

namespace dsteiner::runtime {

dist_graph::dist_graph(const graph::csr_graph& graph,
                       const dist_graph_config& config)
    : graph_(&graph),
      parts_(graph.num_vertices(), config.num_ranks, config.scheme) {
  local_vertices_.resize(static_cast<std::size_t>(config.num_ranks));
  for (graph::vertex_id v = 0; v < graph.num_vertices(); ++v) {
    local_vertices_[static_cast<std::size_t>(parts_.owner(v))].push_back(v);
  }
  if (config.use_delegates && config.delegate_threshold > 0) {
    delegate_.assign(graph.num_vertices(), false);
    for (graph::vertex_id v = 0; v < graph.num_vertices(); ++v) {
      if (graph.degree(v) >= config.delegate_threshold) {
        delegate_[v] = true;
        ++delegate_count_;
      }
    }
    if (delegate_count_ == 0) delegate_.clear();
  }
}

std::uint64_t dist_graph::memory_bytes() const noexcept {
  std::uint64_t bytes = delegate_.empty() ? 0 : graph_->num_vertices() / 8;
  for (const auto& locals : local_vertices_) {
    bytes += locals.size() * sizeof(graph::vertex_id);
  }
  return bytes;
}

}  // namespace dsteiner::runtime
