// The distributed Steiner solver over a comm_backend mesh — Alg. 3 where
// every rank is a real participant owning one hash-partition shard of the
// vertex state and exchanging visitor batches as wire frames.
//
// Output contract: bit-identical to core::solve_steiner_tree on the same
// graph/seeds/config, for any world size and either backend. This does not
// require replicating the shared-memory schedule: the tree is the unique
// fixed point of lexicographic (distance, src, pred) minimisation, the
// cross-cell reduction uses the same (bridge distance, u, v) tie-break, the
// MST is content-determined, and the final edge list is canonically sorted —
// so any convergent execution lands on the same bytes. The loopback-vs-TCP
// and distributed-vs-single tests pin exactly this.
//
// Superstep shape per rank (phase 1; phase 6 walks reuse it):
//   drain admitted visitors to a local fixed point, batching cross-partition
//   relaxations per destination owner -> flush batches + a superstep marker
//   to every peer -> drain every peer's frames up to its marker -> two-phase
//   termination vote (sum outstanding | OR cancel | min open bucket). A
//   confirmed all-idle vote ends the phase; a folded cancel bit unwinds all
//   ranks together via util::operation_cancelled.
//
// Between phases 1 and 2 a ghost sync pushes every owned boundary vertex's
// converged (src, d1) label to each rank owning one of its neighbours, which
// is exactly the remote state the cross-edge scan reads (pred is never read
// remotely and stays unset on ghosts).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/steiner_solver.hpp"
#include "graph/csr_graph.hpp"
#include "runtime/net/cluster_telemetry.hpp"
#include "runtime/net/comm_backend.hpp"

namespace dsteiner::runtime::net {

/// One superstep's traffic through this rank: what the wire actually carried
/// versus what the perf model predicts for the same payload — the per-step
/// resolution behind the dsteiner_comm_bytes_{measured,modelled} histograms.
struct net_superstep_sample {
  std::uint32_t superstep = 0;
  /// Wire bytes sent this superstep (headers, markers and votes included).
  std::uint64_t bytes_measured = 0;
  /// Perf-model prediction: payload records x record size, no framing.
  std::uint64_t bytes_modelled = 0;
};

/// Per-rank telemetry from one distributed solve.
struct net_solve_report {
  int rank = 0;
  int world = 1;
  std::uint64_t supersteps = 0;   ///< BSP steps across phases 1 and 6
  std::uint64_t vote_rounds = 0;  ///< termination rounds (confirms included)
  std::uint64_t ghost_labels_sent = 0;
  std::uint64_t ghost_labels_applied = 0;
  std::uint64_t bytes_modelled = 0;  ///< sum over samples
  net_stats stats;                   ///< final backend counters
  std::vector<net_superstep_sample> samples;
  /// Telemetry samples this rank emitted (config.net_telemetry; one per
  /// superstep boundary plus one per one-shot exchange phase).
  std::vector<rank_telemetry> telemetry;
  /// Rank 0 only: every rank's telemetry merged into canonical order — the
  /// cluster observability plane's product. Empty on other ranks and when
  /// telemetry is off.
  cluster_trace cluster;
};

/// Runs one rank of the distributed solve over `net`. Every rank of the mesh
/// must call this with the same graph content, seed list and config —
/// the graph is replicated (each process loads it deterministically), the
/// *state* is partitioned by hash across `net.world_size()` ranks. Blocks
/// until the whole mesh converges; every rank returns the complete (identical)
/// result. Throws util::operation_cancelled when the folded vote carries a
/// cancel bit, and wire_error if the mesh dies mid-solve.
[[nodiscard]] core::steiner_result solve_rank(
    const graph::csr_graph& graph, std::span<const graph::vertex_id> seeds,
    const core::solver_config& config, comm_backend& net,
    net_solve_report* report = nullptr);

/// Convenience harness: runs `world` ranks over an in-process loopback mesh
/// (one thread per rank) and returns rank 0's result. `reports`, when
/// non-null, receives all ranks' telemetry in rank order. This is the
/// service's --distributed execution path and the reference side of the
/// TCP bit-identity tests.
[[nodiscard]] core::steiner_result solve_loopback(
    const graph::csr_graph& graph, std::span<const graph::vertex_id> seeds,
    const core::solver_config& config, int world,
    std::vector<net_solve_report>* reports = nullptr);

}  // namespace dsteiner::runtime::net
