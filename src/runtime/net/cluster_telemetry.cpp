#include "runtime/net/cluster_telemetry.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

namespace dsteiner::runtime::net {

namespace {

constexpr double k_nanos = 1e-9;

double seconds(std::uint64_t nanos) {
  return static_cast<double>(nanos) * k_nanos;
}

void append_number(std::string& out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  out += buf;
}

}  // namespace

cluster_trace merge_cluster_samples(int world,
                                    std::vector<rank_telemetry> samples) {
  std::sort(samples.begin(), samples.end(),
            [](const rank_telemetry& a, const rank_telemetry& b) {
              if (a.phase != b.phase) return a.phase < b.phase;
              if (a.superstep != b.superstep) return a.superstep < b.superstep;
              return a.rank < b.rank;
            });
  return cluster_trace{world, std::move(samples)};
}

std::vector<straggler_row> straggler_rows(const cluster_trace& trace) {
  std::vector<straggler_row> rows;
  const auto& samples = trace.samples;
  std::size_t begin = 0;
  while (begin < samples.size()) {
    std::size_t end = begin;
    while (end < samples.size() &&
           samples[end].phase == samples[begin].phase &&
           samples[end].superstep == samples[begin].superstep) {
      ++end;
    }

    straggler_row row;
    row.phase = samples[begin].phase;
    row.superstep = samples[begin].superstep;
    std::uint64_t group_total = 0;
    std::uint64_t group_comm = 0;
    std::vector<double> computes;
    computes.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      const rank_telemetry& s = samples[i];
      const std::uint64_t total = s.total_nanos();
      group_total += total;
      group_comm += s.comm_nanos();
      computes.push_back(seconds(s.compute_nanos));
      // Strict > keeps the lowest rank on ties (samples are rank-sorted).
      if (row.critical_rank < 0 || seconds(total) > row.max_total_seconds) {
        row.critical_rank = s.rank;
        row.max_total_seconds = seconds(total);
      }
      row.max_compute_seconds =
          std::max(row.max_compute_seconds, seconds(s.compute_nanos));
    }
    std::sort(computes.begin(), computes.end());
    const std::size_t n = computes.size();
    row.median_compute_seconds =
        n % 2 == 1 ? computes[n / 2]
                   : 0.5 * (computes[n / 2 - 1] + computes[n / 2]);
    row.compute_skew = row.median_compute_seconds > 0.0
                           ? row.max_compute_seconds / row.median_compute_seconds
                           : 1.0;
    row.comm_wait_fraction =
        group_total > 0 ? static_cast<double>(group_comm) /
                              static_cast<double>(group_total)
                        : 0.0;
    rows.push_back(row);
    begin = end;
  }
  return rows;
}

cluster_summary summarize_cluster(const cluster_trace& trace) {
  cluster_summary summary;
  summary.world = trace.world;
  const auto rows = straggler_rows(trace);
  summary.supersteps = rows.size();

  std::map<int, std::uint64_t> dominated;
  for (const straggler_row& row : rows) {
    if (row.critical_rank >= 0) ++dominated[row.critical_rank];
    summary.max_compute_skew =
        std::max(summary.max_compute_skew, row.compute_skew);
  }
  for (const auto& [rank, count] : dominated) {
    // Strict > keeps the lowest rank on ties (map iterates rank-ascending).
    if (count > summary.critical_supersteps) {
      summary.critical_rank = rank;
      summary.critical_supersteps = count;
    }
  }

  std::uint64_t total = 0;
  std::uint64_t comm = 0;
  for (const rank_telemetry& s : trace.samples) {
    total += s.total_nanos();
    comm += s.comm_nanos();
  }
  summary.comm_wait_fraction =
      total > 0 ? static_cast<double>(comm) / static_cast<double>(total) : 0.0;
  return summary;
}

std::string render_cluster_json(const cluster_trace& trace) {
  const cluster_summary summary = summarize_cluster(trace);
  std::string out;
  out.reserve(512 + trace.samples.size() * 64);
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"world\":%d,\"samples\":%zu,\"supersteps\":%llu,"
                "\"critical_rank\":%d,\"critical_supersteps\":%llu,",
                trace.world, trace.samples.size(),
                static_cast<unsigned long long>(summary.supersteps),
                summary.critical_rank,
                static_cast<unsigned long long>(summary.critical_supersteps));
  out += buf;
  out += "\"max_compute_skew\":";
  append_number(out, summary.max_compute_skew);
  out += ",\"comm_wait_fraction\":";
  append_number(out, summary.comm_wait_fraction);
  out += ",\"straggler_report\":[";
  bool first = true;
  for (const straggler_row& row : straggler_rows(trace)) {
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"phase\":\"%s\",\"superstep\":%u,\"critical_rank\":%d,",
                  to_string(static_cast<telemetry_phase>(row.phase)),
                  row.superstep, row.critical_rank);
    out += buf;
    out += "\"max_total_seconds\":";
    append_number(out, row.max_total_seconds);
    out += ",\"max_compute_seconds\":";
    append_number(out, row.max_compute_seconds);
    out += ",\"median_compute_seconds\":";
    append_number(out, row.median_compute_seconds);
    out += ",\"compute_skew\":";
    append_number(out, row.compute_skew);
    out += ",\"comm_wait_fraction\":";
    append_number(out, row.comm_wait_fraction);
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace dsteiner::runtime::net
