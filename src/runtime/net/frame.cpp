#include "runtime/net/frame.hpp"

#include <cstring>
#include <string>

namespace dsteiner::runtime::net {

namespace {

void put_u16(std::uint8_t* out, std::uint16_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
}

void put_u32(std::uint8_t* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint16_t get_u16(const std::uint8_t* in) {
  return static_cast<std::uint16_t>(in[0] | (in[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in[i]) << (8 * i);
  return v;
}

/// Little-endian appender for payload construction.
class wire_writer {
 public:
  explicit wire_writer(std::size_t reserve_bytes = 0) {
    bytes_.reserve(reserve_bytes);
  }

  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked little-endian cursor: every read past the end throws
/// wire_error — a truncated payload can never yield a partial record.
class wire_reader {
 public:
  explicit wire_reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    need(1);
    return bytes_[pos_++];
  }
  std::uint32_t u32() {
    need(4);
    const std::uint32_t v = get_u32(bytes_.data() + pos_);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(bytes_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - pos_;
  }

  void expect_done(const char* what) const {
    if (pos_ != bytes_.size()) {
      throw wire_error(std::string(what) + ": trailing payload bytes");
    }
  }

 private:
  void need(std::size_t n) const {
    if (bytes_.size() - pos_ < n) throw wire_error("truncated payload");
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

/// Validates that a record-array payload holds a whole number of records and
/// returns the count. Rejects both truncation (partial trailing record) and
/// any length that is not an exact multiple.
std::size_t record_count(const frame& f, std::size_t record_bytes,
                         const char* what) {
  if (f.payload.size() % record_bytes != 0) {
    throw wire_error(std::string(what) + ": payload is not a whole number of " +
                     std::to_string(record_bytes) + "-byte records");
  }
  return f.payload.size() / record_bytes;
}

void check_type(const frame& f, frame_type want, const char* what) {
  if (f.type != want) {
    throw wire_error(std::string(what) + ": unexpected frame type " +
                     to_string(f.type));
  }
}

}  // namespace

const char* to_string(frame_type type) noexcept {
  switch (type) {
    case frame_type::hello: return "hello";
    case frame_type::visitor_batch: return "visitor_batch";
    case frame_type::walk_batch: return "walk_batch";
    case frame_type::ghost_sync: return "ghost_sync";
    case frame_type::en_entries: return "en_entries";
    case frame_type::tree_edges: return "tree_edges";
    case frame_type::superstep_marker: return "superstep_marker";
    case frame_type::vote: return "vote";
    case frame_type::vote_confirm: return "vote_confirm";
    case frame_type::shutdown: return "shutdown";
    case frame_type::telemetry: return "telemetry";
  }
  return "?";
}

const char* to_string(telemetry_phase phase) noexcept {
  switch (phase) {
    case telemetry_phase::voronoi: return "voronoi";
    case telemetry_phase::ghost_sync: return "ghost_sync";
    case telemetry_phase::en_reduce: return "en_reduce";
    case telemetry_phase::tree_walk: return "tree_walk";
    case telemetry_phase::gather: return "gather";
  }
  return "?";
}

void encode_header(const frame& f, std::uint8_t out[k_header_bytes]) {
  put_u16(out, k_frame_magic);
  out[2] = static_cast<std::uint8_t>(f.type);
  out[3] = 0;  // flags, reserved
  put_u32(out + 4, static_cast<std::uint32_t>(f.payload.size()));
}

frame_header decode_header(std::span<const std::uint8_t> header_bytes) {
  if (header_bytes.size() < k_header_bytes) {
    throw wire_error("truncated frame header");
  }
  if (get_u16(header_bytes.data()) != k_frame_magic) {
    throw wire_error("bad frame magic (stream desynchronised?)");
  }
  const std::uint8_t raw_type = header_bytes[2];
  if (raw_type < static_cast<std::uint8_t>(frame_type::hello) ||
      raw_type > static_cast<std::uint8_t>(frame_type::telemetry)) {
    throw wire_error("unknown frame type " + std::to_string(raw_type));
  }
  const std::uint32_t len = get_u32(header_bytes.data() + 4);
  if (len > k_max_payload_bytes) {
    throw wire_error("oversized frame: " + std::to_string(len) + " bytes");
  }
  return frame_header{static_cast<frame_type>(raw_type), len};
}

std::vector<std::uint8_t> encode_frame(const frame& f) {
  if (f.payload.size() > k_max_payload_bytes) {
    throw wire_error("refusing to encode oversized frame");
  }
  std::vector<std::uint8_t> out(k_header_bytes + f.payload.size());
  encode_header(f, out.data());
  std::memcpy(out.data() + k_header_bytes, f.payload.data(), f.payload.size());
  return out;
}

frame decode_frame(std::span<const std::uint8_t> bytes) {
  const frame_header header = decode_header(bytes);
  if (bytes.size() != k_header_bytes + header.payload_bytes) {
    throw wire_error(bytes.size() < k_header_bytes + header.payload_bytes
                         ? "truncated frame payload"
                         : "trailing bytes after frame payload");
  }
  frame f;
  f.type = header.type;
  f.payload.assign(bytes.begin() + k_header_bytes, bytes.end());
  return f;
}

frame encode_hello(int rank, int world) {
  wire_writer w(8);
  w.u32(static_cast<std::uint32_t>(rank));
  w.u32(static_cast<std::uint32_t>(world));
  return frame{frame_type::hello, w.take()};
}

void decode_hello(const frame& f, int& rank, int& world) {
  check_type(f, frame_type::hello, "hello");
  wire_reader r(f.payload);
  rank = static_cast<int>(r.u32());
  world = static_cast<int>(r.u32());
  r.expect_done("hello");
  if (world <= 0 || rank < 0 || rank >= world) {
    throw wire_error("hello: rank/world out of range");
  }
}

frame encode_visitor_batch(std::span<const net_visitor> items) {
  wire_writer w(items.size() * 32);
  for (const net_visitor& v : items) {
    w.u64(v.vj);
    w.u64(v.vp);
    w.u64(v.t);
    w.u64(v.r);
  }
  return frame{frame_type::visitor_batch, w.take()};
}

std::vector<net_visitor> decode_visitor_batch(const frame& f) {
  check_type(f, frame_type::visitor_batch, "visitor_batch");
  const std::size_t n = record_count(f, 32, "visitor_batch");
  wire_reader r(f.payload);
  std::vector<net_visitor> out(n);
  for (net_visitor& v : out) {
    v.vj = r.u64();
    v.vp = r.u64();
    v.t = r.u64();
    v.r = r.u64();
  }
  return out;
}

frame encode_walk_batch(std::span<const graph::vertex_id> items) {
  wire_writer w(items.size() * 8);
  for (const graph::vertex_id v : items) w.u64(v);
  return frame{frame_type::walk_batch, w.take()};
}

std::vector<graph::vertex_id> decode_walk_batch(const frame& f) {
  check_type(f, frame_type::walk_batch, "walk_batch");
  const std::size_t n = record_count(f, 8, "walk_batch");
  wire_reader r(f.payload);
  std::vector<graph::vertex_id> out(n);
  for (graph::vertex_id& v : out) v = r.u64();
  return out;
}

frame encode_ghost_batch(std::span<const ghost_label> items) {
  wire_writer w(items.size() * 24);
  for (const ghost_label& g : items) {
    w.u64(g.v);
    w.u64(g.src);
    w.u64(g.dist);
  }
  return frame{frame_type::ghost_sync, w.take()};
}

std::vector<ghost_label> decode_ghost_batch(const frame& f) {
  check_type(f, frame_type::ghost_sync, "ghost_sync");
  const std::size_t n = record_count(f, 24, "ghost_sync");
  wire_reader r(f.payload);
  std::vector<ghost_label> out(n);
  for (ghost_label& g : out) {
    g.v = r.u64();
    g.src = r.u64();
    g.dist = r.u64();
  }
  return out;
}

frame encode_en_batch(std::span<const wire_en_entry> items) {
  wire_writer w(items.size() * 48);
  for (const wire_en_entry& e : items) {
    w.u64(e.seed_a);
    w.u64(e.seed_b);
    w.u64(e.bridge_distance);
    w.u64(e.u);
    w.u64(e.v);
    w.u64(e.edge_weight);
  }
  return frame{frame_type::en_entries, w.take()};
}

std::vector<wire_en_entry> decode_en_batch(const frame& f) {
  check_type(f, frame_type::en_entries, "en_entries");
  const std::size_t n = record_count(f, 48, "en_entries");
  wire_reader r(f.payload);
  std::vector<wire_en_entry> out(n);
  for (wire_en_entry& e : out) {
    e.seed_a = r.u64();
    e.seed_b = r.u64();
    e.bridge_distance = r.u64();
    e.u = r.u64();
    e.v = r.u64();
    e.edge_weight = r.u64();
  }
  return out;
}

frame encode_edge_batch(std::span<const graph::weighted_edge> items) {
  wire_writer w(items.size() * 24);
  for (const graph::weighted_edge& e : items) {
    w.u64(e.source);
    w.u64(e.target);
    w.u64(e.weight);
  }
  return frame{frame_type::tree_edges, w.take()};
}

std::vector<graph::weighted_edge> decode_edge_batch(const frame& f) {
  check_type(f, frame_type::tree_edges, "tree_edges");
  const std::size_t n = record_count(f, 24, "tree_edges");
  wire_reader r(f.payload);
  std::vector<graph::weighted_edge> out(n);
  for (graph::weighted_edge& e : out) {
    e.source = r.u64();
    e.target = r.u64();
    e.weight = r.u64();
  }
  return out;
}

frame encode_vote(const bucket_vote& vote, bool confirm) {
  wire_writer w(21);
  w.u64(vote.outstanding);
  w.u64(vote.min_bucket);
  w.u32(vote.superstep);
  w.u8(vote.cancel);
  return frame{confirm ? frame_type::vote_confirm : frame_type::vote, w.take()};
}

bucket_vote decode_vote(const frame& f) {
  if (f.type != frame_type::vote && f.type != frame_type::vote_confirm) {
    throw wire_error(std::string("vote: unexpected frame type ") +
                     to_string(f.type));
  }
  wire_reader r(f.payload);
  bucket_vote v;
  v.outstanding = r.u64();
  v.min_bucket = r.u64();
  v.superstep = r.u32();
  v.cancel = r.u8();
  r.expect_done("vote");
  return v;
}

frame make_marker(std::uint32_t superstep) {
  wire_writer w(4);
  w.u32(superstep);
  return frame{frame_type::superstep_marker, w.take()};
}

std::uint32_t decode_marker(const frame& f) {
  check_type(f, frame_type::superstep_marker, "superstep_marker");
  wire_reader r(f.payload);
  const std::uint32_t superstep = r.u32();
  r.expect_done("superstep_marker");
  return superstep;
}

frame encode_telemetry(const rank_telemetry& sample) {
  wire_writer w(69 + sample.peers.size() * 24);
  w.u32(static_cast<std::uint32_t>(sample.rank));
  w.u8(sample.phase);
  w.u32(sample.superstep);
  w.u64(sample.visitors);
  w.u64(sample.min_bucket);
  w.u64(sample.ghost_labels);
  w.u64(sample.compute_nanos);
  w.u64(sample.send_flush_nanos);
  w.u64(sample.recv_wait_nanos);
  w.u64(sample.vote_nanos);
  w.u32(static_cast<std::uint32_t>(sample.peers.size()));
  for (const telemetry_peer_traffic& peer : sample.peers) {
    w.u32(peer.batches_sent);
    w.u64(peer.bytes_sent);
    w.u32(peer.batches_received);
    w.u64(peer.bytes_received);
  }
  return frame{frame_type::telemetry, w.take()};
}

rank_telemetry decode_telemetry(const frame& f) {
  check_type(f, frame_type::telemetry, "telemetry");
  wire_reader r(f.payload);
  rank_telemetry sample;
  sample.rank = static_cast<std::int32_t>(r.u32());
  sample.phase = r.u8();
  sample.superstep = r.u32();
  sample.visitors = r.u64();
  sample.min_bucket = r.u64();
  sample.ghost_labels = r.u64();
  sample.compute_nanos = r.u64();
  sample.send_flush_nanos = r.u64();
  sample.recv_wait_nanos = r.u64();
  sample.vote_nanos = r.u64();
  if (sample.phase < static_cast<std::uint8_t>(telemetry_phase::voronoi) ||
      sample.phase > static_cast<std::uint8_t>(telemetry_phase::gather)) {
    throw wire_error("telemetry: unknown phase " +
                     std::to_string(sample.phase));
  }
  const std::uint32_t peer_count = r.u32();
  if (r.remaining() != static_cast<std::size_t>(peer_count) * 24) {
    throw wire_error("telemetry: peer array length mismatch");
  }
  sample.peers.resize(peer_count);
  for (telemetry_peer_traffic& peer : sample.peers) {
    peer.batches_sent = r.u32();
    peer.bytes_sent = r.u64();
    peer.batches_received = r.u32();
    peer.bytes_received = r.u64();
  }
  r.expect_done("telemetry");
  return sample;
}

}  // namespace dsteiner::runtime::net
