#include "runtime/net/loopback_backend.hpp"

#include <stdexcept>

namespace dsteiner::runtime::net {

namespace {
constexpr const char* k_closed = "loopback mesh closed";
}  // namespace

/// One rank's view of the mesh. send() moves an encoded-size-accounted frame
/// into the destination inbox; recv() waits on this rank's own inbox.
class loopback_endpoint final : public comm_backend {
 public:
  loopback_endpoint(loopback_mesh* mesh, int rank)
      : mesh_(mesh), rank_(rank) {}

  [[nodiscard]] int rank() const noexcept override { return rank_; }
  [[nodiscard]] int world_size() const noexcept override {
    return mesh_->world_;
  }

  void send(int to, const frame& f) override {
    if (to == rank_ || to < 0 || to >= mesh_->world_) {
      throw std::invalid_argument("loopback send: bad destination rank");
    }
    loopback_mesh::inbox& box = *mesh_->inboxes_[static_cast<std::size_t>(to)];
    {
      std::lock_guard lock(box.mutex);
      if (box.closed) throw wire_error(k_closed);
      box.frames.emplace_back(rank_, f);
    }
    box.ready.notify_one();
    stats_.bytes_sent += wire_bytes(f);
    ++stats_.frames_sent;
  }

  bool recv(int& from, frame& out) override {
    loopback_mesh::inbox& box =
        *mesh_->inboxes_[static_cast<std::size_t>(rank_)];
    std::unique_lock lock(box.mutex);
    box.ready.wait(lock, [&] { return !box.frames.empty() || box.closed; });
    if (box.frames.empty()) return false;  // closed and drained
    from = box.frames.front().first;
    out = std::move(box.frames.front().second);
    box.frames.pop_front();
    lock.unlock();
    stats_.bytes_received += wire_bytes(out);
    ++stats_.frames_received;
    return true;
  }

  [[nodiscard]] net_stats stats() const noexcept override { return stats_; }

  void close() override { mesh_->close_all(); }

 private:
  loopback_mesh* mesh_;
  int rank_;
  net_stats stats_;
};

loopback_mesh::loopback_mesh(int world) : world_(world) {
  if (world <= 0) {
    throw std::invalid_argument("loopback_mesh: world must be positive");
  }
  inboxes_.reserve(static_cast<std::size_t>(world));
  endpoints_.reserve(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) {
    inboxes_.push_back(std::make_unique<inbox>());
    endpoints_.push_back(std::make_unique<loopback_endpoint>(this, r));
  }
}

loopback_mesh::~loopback_mesh() { close_all(); }

comm_backend& loopback_mesh::endpoint(int rank) {
  if (rank < 0 || rank >= world_) {
    throw std::invalid_argument("loopback_mesh: rank out of range");
  }
  return *endpoints_[static_cast<std::size_t>(rank)];
}

void loopback_mesh::close_all() {
  for (auto& box : inboxes_) {
    {
      std::lock_guard lock(box->mutex);
      box->closed = true;
    }
    box->ready.notify_all();
  }
}

}  // namespace dsteiner::runtime::net
