// Wire format of the real multi-process transport (src/runtime/net/).
//
// Every message between ranks is one length-prefixed *frame*:
//
//   magic u16 | type u8 | flags u8 | payload_len u32 | payload bytes
//
// All integers are little-endian fixed-width, so a frame encoded by any rank
// decodes identically on any peer regardless of host padding or ABI — the
// same property MPI datatypes buy the paper's implementation. Decoding is
// strict: a bad magic, an oversized length, a truncated payload or trailing
// garbage all raise `wire_error` instead of yielding a partial message, so a
// desynchronised stream fails loudly at the first frame boundary.
//
// The typed payload codecs below carry exactly the state the engines already
// exchange in-process: Voronoi visitor batches (Alg. 4 relaxations crossing
// partitions), tree-edge walk batches (Alg. 6), ghost boundary labels,
// cross-cell EN entries (Alg. 5), result tree edges, and the two-phase
// termination votes folding the superstep barrier's aggregate payload.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "graph/types.hpp"

namespace dsteiner::runtime::net {

/// Malformed wire data: bad magic, truncated/oversized frame, payload whose
/// length is not a whole number of records, or an unexpected frame type.
class wire_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class frame_type : std::uint8_t {
  hello = 1,            ///< mesh handshake: {rank, world}
  visitor_batch = 2,    ///< Voronoi visitors routed to their target's owner
  walk_batch = 3,       ///< tree-edge pred walk-backs (vertex ids)
  ghost_sync = 4,       ///< boundary labels {v, src, dist} pushed to neighbours
  en_entries = 5,       ///< cross-cell EN entries for the global reduction
  tree_edges = 6,       ///< per-rank result edges for the final allgather
  superstep_marker = 7, ///< end-of-superstep: no more data frames this step
  vote = 8,             ///< termination vote, phase A (propose)
  vote_confirm = 9,     ///< termination vote, phase B (confirm)
  shutdown = 10,        ///< orderly mesh teardown
  telemetry = 11,       ///< per-rank superstep sample, pushed to rank 0
};

[[nodiscard]] const char* to_string(frame_type type) noexcept;

struct frame {
  frame_type type = frame_type::shutdown;
  std::vector<std::uint8_t> payload;
};

inline constexpr std::uint16_t k_frame_magic = 0xD57E;
inline constexpr std::size_t k_header_bytes = 8;
/// Upper bound a receiver enforces before allocating the payload buffer: a
/// corrupted length field cannot OOM the rank. Batches are chunked well below
/// this by the senders.
inline constexpr std::uint32_t k_max_payload_bytes = 64u << 20;

/// Bytes a frame occupies on the wire (what the traffic counters measure).
[[nodiscard]] inline std::uint64_t wire_bytes(const frame& f) noexcept {
  return k_header_bytes + f.payload.size();
}

struct frame_header {
  frame_type type = frame_type::shutdown;
  std::uint32_t payload_bytes = 0;
};

/// Serialises the 8-byte header for `f` into `out`.
void encode_header(const frame& f, std::uint8_t out[k_header_bytes]);

/// Parses and validates an 8-byte header (magic, type range, length bound).
[[nodiscard]] frame_header decode_header(
    std::span<const std::uint8_t> header_bytes);

/// Whole-buffer encode/decode, used by the loopback tests and anywhere a
/// frame travels through memory instead of a socket. decode_frame rejects
/// buffers with missing or trailing bytes.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const frame& f);
[[nodiscard]] frame decode_frame(std::span<const std::uint8_t> bytes);

// ---- typed payloads ------------------------------------------------------

/// One Voronoi relaxation crossing a partition boundary. Field meanings match
/// core::voronoi_visitor: relax vertex `vj` with candidate label
/// (dist `r`, seed `t`, pred `vp`).
struct net_visitor {
  graph::vertex_id vj = 0;
  graph::vertex_id vp = graph::k_no_vertex;
  graph::vertex_id t = graph::k_no_vertex;
  graph::weight_t r = graph::k_inf_distance;

  friend bool operator==(const net_visitor&, const net_visitor&) = default;
};

/// A boundary vertex's converged phase-1 label, pushed by its owner to every
/// rank owning one of its neighbours (the ghost/boundary sync).
struct ghost_label {
  graph::vertex_id v = 0;
  graph::vertex_id src = graph::k_no_vertex;
  graph::weight_t dist = graph::k_inf_distance;

  friend bool operator==(const ghost_label&, const ghost_label&) = default;
};

/// One rank's contribution to a termination round — the same payload the
/// threaded engine folds through parallel::superstep_barrier::aggregate:
/// outstanding backlog (summed), cooperative-stop flag (OR-folded) and the
/// lowest open delta-stepping bucket (min-folded; UINT64_MAX = none).
struct bucket_vote {
  std::uint64_t outstanding = 0;
  std::uint64_t min_bucket = UINT64_MAX;
  std::uint32_t superstep = 0;
  std::uint8_t cancel = 0;

  friend bool operator==(const bucket_vote&, const bucket_vote&) = default;
};

/// One EN entry on the wire: canonical seed pair + its best bridge.
struct wire_en_entry {
  graph::vertex_id seed_a = 0;  ///< canonical: seed_a < seed_b
  graph::vertex_id seed_b = 0;
  graph::weight_t bridge_distance = graph::k_inf_distance;
  graph::vertex_id u = graph::k_no_vertex;  ///< bridge endpoints, u < v
  graph::vertex_id v = graph::k_no_vertex;
  graph::weight_t edge_weight = 0;

  friend bool operator==(const wire_en_entry&, const wire_en_entry&) = default;
};

[[nodiscard]] frame encode_hello(int rank, int world);
void decode_hello(const frame& f, int& rank, int& world);

[[nodiscard]] frame encode_visitor_batch(std::span<const net_visitor> items);
[[nodiscard]] std::vector<net_visitor> decode_visitor_batch(const frame& f);

[[nodiscard]] frame encode_walk_batch(std::span<const graph::vertex_id> items);
[[nodiscard]] std::vector<graph::vertex_id> decode_walk_batch(const frame& f);

[[nodiscard]] frame encode_ghost_batch(std::span<const ghost_label> items);
[[nodiscard]] std::vector<ghost_label> decode_ghost_batch(const frame& f);

[[nodiscard]] frame encode_en_batch(std::span<const wire_en_entry> items);
[[nodiscard]] std::vector<wire_en_entry> decode_en_batch(const frame& f);

[[nodiscard]] frame encode_edge_batch(
    std::span<const graph::weighted_edge> items);
[[nodiscard]] std::vector<graph::weighted_edge> decode_edge_batch(
    const frame& f);

[[nodiscard]] frame encode_vote(const bucket_vote& vote, bool confirm);
[[nodiscard]] bucket_vote decode_vote(const frame& f);

[[nodiscard]] frame make_marker(std::uint32_t superstep);
[[nodiscard]] std::uint32_t decode_marker(const frame& f);

// ---- cluster telemetry ---------------------------------------------------

/// Which phase of the distributed pipeline a telemetry sample belongs to.
/// Ordered by pipeline position so sorting by (phase, superstep, rank) yields
/// the execution order of the whole solve.
enum class telemetry_phase : std::uint8_t {
  voronoi = 1,     ///< bucketed Voronoi growth supersteps (Alg. 4)
  ghost_sync = 2,  ///< boundary-label exchange (one-shot)
  en_reduce = 3,   ///< all-to-all EN reduction (one-shot, Alg. 5)
  tree_walk = 4,   ///< tree-edge walk-back supersteps (Alg. 6)
  gather = 5,      ///< result-edge allgather (one-shot)
};

[[nodiscard]] const char* to_string(telemetry_phase phase) noexcept;

/// Data-frame traffic one rank exchanged with one peer during one sample
/// window. Control frames (markers, votes, telemetry itself) are excluded:
/// the plane reports the application's communication, not its own.
struct telemetry_peer_traffic {
  std::uint32_t batches_sent = 0;
  std::uint64_t bytes_sent = 0;  ///< wire bytes (header + payload)
  std::uint32_t batches_received = 0;
  std::uint64_t bytes_received = 0;

  friend bool operator==(const telemetry_peer_traffic&,
                         const telemetry_peer_traffic&) = default;
};

/// One rank's activity during one superstep (or one-shot exchange phase) —
/// the payload of a frame_type::telemetry frame. Every rank emits one per
/// superstep boundary; ranks != 0 push theirs to rank 0, which merges all of
/// them into a cluster_trace. Timings travel as integer nanoseconds so the
/// codec stays fixed-width like every other payload.
struct rank_telemetry {
  std::int32_t rank = 0;
  std::uint8_t phase = 0;  ///< a telemetry_phase value
  std::uint32_t superstep = 0;
  std::uint64_t visitors = 0;      ///< visitors/walks drained this window
  std::uint64_t min_bucket = UINT64_MAX;  ///< open delta bucket (none = max)
  std::uint64_t ghost_labels = 0;  ///< boundary labels pushed (ghost phase)
  std::uint64_t compute_nanos = 0;     ///< local drain/relax work
  std::uint64_t send_flush_nanos = 0;  ///< encoding + flushing data batches
  std::uint64_t recv_wait_nanos = 0;   ///< peer-drain loop (block + apply)
  std::uint64_t vote_nanos = 0;        ///< two-phase termination vote
  std::vector<telemetry_peer_traffic> peers;  ///< indexed by peer rank

  [[nodiscard]] std::uint64_t total_nanos() const noexcept {
    return compute_nanos + send_flush_nanos + recv_wait_nanos + vote_nanos;
  }
  [[nodiscard]] std::uint64_t comm_nanos() const noexcept {
    return send_flush_nanos + recv_wait_nanos + vote_nanos;
  }

  friend bool operator==(const rank_telemetry&, const rank_telemetry&) = default;
};

[[nodiscard]] frame encode_telemetry(const rank_telemetry& sample);
[[nodiscard]] rank_telemetry decode_telemetry(const frame& f);

}  // namespace dsteiner::runtime::net
