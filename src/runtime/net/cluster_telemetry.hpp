// Rank 0's merged view of a distributed solve's telemetry plane.
//
// Every rank emits one rank_telemetry frame per superstep boundary (and one
// per one-shot exchange phase); ranks != 0 push theirs to rank 0, whose
// peer_channels divert them to a sink as they arrive interleaved with data
// frames. This module turns that unordered pile into something usable:
//
//   * merge_cluster_samples canonicalises the samples into execution order
//     (phase, superstep, rank) — deterministic for any arrival interleaving,
//     backend, or repeat run, which is what the merge-determinism tests pin;
//   * straggler_rows attributes each superstep to its critical-path rank and
//     quantifies skew (max/median compute) and the comm-wait share — the
//     per-superstep answer to "which rank made this step slow, and was it
//     compute imbalance or communication?";
//   * summarize_cluster folds the rows into whole-solve headline numbers for
//     trace_summary / statusz;
//   * render_cluster_json serialises everything for the service's /clusterz
//     debug route and the dsteiner-rank launcher's --clusterz flag.
//
// Like the rest of the observability stack this is pure observation: nothing
// here is ever read back by the solver.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/net/frame.hpp"

namespace dsteiner::runtime::net {

/// All ranks' telemetry for one distributed solve, in canonical order.
struct cluster_trace {
  int world = 1;
  std::vector<rank_telemetry> samples;  ///< sorted (phase, superstep, rank)
};

/// Per-superstep straggler/skew attribution over one (phase, superstep) group
/// of cluster samples.
struct straggler_row {
  std::uint8_t phase = 0;  ///< a telemetry_phase value
  std::uint32_t superstep = 0;
  int critical_rank = -1;  ///< rank with max total time (ties: lowest rank)
  double max_total_seconds = 0.0;     ///< the critical rank's wall share
  double max_compute_seconds = 0.0;
  double median_compute_seconds = 0.0;
  double compute_skew = 1.0;  ///< max/median compute (1.0 when median is 0)
  double comm_wait_fraction = 0.0;  ///< (send+recv+vote) share of group time
};

/// Whole-solve headline numbers folded from the straggler rows.
struct cluster_summary {
  int world = 1;
  std::uint64_t supersteps = 0;  ///< straggler rows (superstep groups)
  int critical_rank = -1;  ///< most frequent critical-path rank (ties: lowest)
  std::uint64_t critical_supersteps = 0;  ///< supersteps that rank dominated
  double max_compute_skew = 1.0;          ///< worst per-superstep skew
  double comm_wait_fraction = 0.0;        ///< comm share of all rank time
};

/// Canonicalises raw samples (any arrival order) into a cluster_trace sorted
/// by (phase, superstep, rank).
[[nodiscard]] cluster_trace merge_cluster_samples(
    int world, std::vector<rank_telemetry> samples);

[[nodiscard]] std::vector<straggler_row> straggler_rows(
    const cluster_trace& trace);

[[nodiscard]] cluster_summary summarize_cluster(const cluster_trace& trace);

/// JSON document for /clusterz and `dsteiner_rank --clusterz`: summary plus
/// one straggler row per superstep group.
[[nodiscard]] std::string render_cluster_json(const cluster_trace& trace);

}  // namespace dsteiner::runtime::net
