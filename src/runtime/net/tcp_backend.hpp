// TCP comm_backend: each rank is its own process, the mesh is persistent
// localhost (or LAN) sockets.
//
// Mesh establishment is deadlock-free by construction: every rank first
// binds and listens on `base_port + rank`, then dials every *lower* rank
// (retrying while the peer's listener comes up), then accepts one connection
// from every *higher* rank. Rank 0 dials nobody; rank world-1 accepts
// nobody-but-dials-everyone; no cycle of mutual waits exists. The first
// frame on every connection is a `hello{rank, world}` handshake — it
// identifies the dialling peer (accept order is nondeterministic) and
// rejects world-size mismatches before any algorithm traffic flows.
//
// Frames are length-prefixed (frame.hpp) over TCP_NODELAY streams; sends are
// full writes, receives read exactly one frame (header, then payload) from a
// poll()-selected peer, with round-robin fairness across ready peers so one
// chatty neighbour cannot starve the marker from another. Decoding enforces
// the magic/size bounds, so a desynchronised or malicious stream fails the
// solve instead of corrupting state.
#pragma once

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "runtime/net/comm_backend.hpp"

namespace dsteiner::runtime::net {

struct tcp_backend_config {
  int rank = 0;
  int world = 2;
  /// Rank r listens on base_port + r. Every process of one solve must agree.
  std::uint16_t base_port = 29870;
  /// How long to keep re-dialling a lower rank's listener before giving up
  /// (covers process launch skew), and the accept deadline for higher ranks.
  int connect_timeout_ms = 15000;
};

class tcp_backend final : public comm_backend {
 public:
  /// Blocks until the full mesh is connected and handshaken; throws
  /// std::runtime_error (socket failures) or wire_error (handshake) on
  /// failure, closing anything half-open.
  explicit tcp_backend(const tcp_backend_config& config);
  ~tcp_backend() override;

  tcp_backend(const tcp_backend&) = delete;
  tcp_backend& operator=(const tcp_backend&) = delete;

  [[nodiscard]] int rank() const noexcept override { return config_.rank; }
  [[nodiscard]] int world_size() const noexcept override {
    return config_.world;
  }

  void send(int to, const frame& f) override;
  bool recv(int& from, frame& out) override;
  [[nodiscard]] net_stats stats() const noexcept override { return stats_; }
  void close() override;

 private:
  [[nodiscard]] int fd_of(int peer) const;
  void close_all() noexcept;
  void drain_ready_peers();

  tcp_backend_config config_;
  std::vector<int> peer_fd_;  ///< indexed by rank; own slot = -1
  /// Frames read off the wire while a send was waiting for buffer space —
  /// the anti-deadlock path (see send()). recv() serves these first.
  std::deque<std::pair<int, frame>> rx_queue_;
  int next_peer_ = 0;  ///< round-robin start for recv fairness
  bool closed_ = false;
  net_stats stats_;
};

}  // namespace dsteiner::runtime::net
