// In-process loopback mesh — the default comm_backend.
//
// Extraction of the transport the repo has always effectively used: every
// rank lives in the same process and "sending" is moving a frame into the
// destination rank's inbox. Zero behaviour change versus shared memory for
// the algorithms above it, but the frames still pass through the real wire
// encode path for byte accounting, so loopback solves report the same
// measured traffic a TCP solve does — which is what lets tests assert the
// TCP backend is a pure transport swap.
//
// One `loopback_mesh` owns `world` endpoints; each endpoint is driven by
// exactly one rank thread (net::solve_loopback spawns one thread per rank).
// Inboxes are mutex+condvar deques: unbounded, so a rank can always complete
// its superstep sends before draining receives (the BSP discipline the
// solver relies on), and `close_all()` unblocks every waiter for error
// unwinding.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "runtime/net/comm_backend.hpp"

namespace dsteiner::runtime::net {

class loopback_mesh {
 public:
  explicit loopback_mesh(int world);
  ~loopback_mesh();

  loopback_mesh(const loopback_mesh&) = delete;
  loopback_mesh& operator=(const loopback_mesh&) = delete;

  [[nodiscard]] int world_size() const noexcept { return world_; }

  /// Rank `rank`'s endpoint. The mesh must outlive every returned reference.
  [[nodiscard]] comm_backend& endpoint(int rank);

  /// Closes every inbox: blocked receivers wake and drain, then observe
  /// end-of-mesh. Used for orderly teardown and error unwinding.
  void close_all();

 private:
  friend class loopback_endpoint;

  struct inbox {
    std::mutex mutex;
    std::condition_variable ready;
    std::deque<std::pair<int, frame>> frames;  ///< (from, frame)
    bool closed = false;
  };

  int world_;
  std::vector<std::unique_ptr<inbox>> inboxes_;
  std::vector<std::unique_ptr<comm_backend>> endpoints_;
};

}  // namespace dsteiner::runtime::net
