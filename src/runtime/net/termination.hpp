// Superstep plumbing shared by every distributed phase: per-peer frame
// demultiplexing and the two-phase distributed termination vote that replaces
// the shared-memory epoch barrier.
//
// `peer_channels` turns the backend's any-source recv() into per-peer FIFO
// queues, so phase code can say "give me the next frame from rank 3" or
// "stream frames from rank 3 until its superstep marker" while frames from
// other peers (including early arrivals from ranks already in the next
// superstep) are parked instead of dropped. This is what makes the BSP
// discipline safe over a transport with no global ordering.
//
// `termination_vote` folds the same aggregate the threaded engine's
// superstep_barrier carries — outstanding work (sum), cooperative cancel
// (OR), next delta-stepping bucket (min) — across ranks with an all-to-all
// exchange, then confirms an all-idle result with a second round. The
// confirmation round is what makes termination sound: a rank can vote idle
// and then receive late visitors sent before the vote, so "everyone idle
// once" is only a hypothesis until everyone re-affirms it with no traffic in
// between. Both rounds ride the same frame path as data, so vote bytes show
// up in measured traffic like everything else.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "runtime/net/comm_backend.hpp"

namespace dsteiner::runtime::net {

/// Per-peer FIFO demux over comm_backend::recv(). One instance per rank,
/// driven by the rank's solve thread.
class peer_channels {
 public:
  explicit peer_channels(comm_backend& net);

  /// Next frame from `from`, blocking; parks frames from other peers.
  /// Throws wire_error if the mesh closes first.
  frame next(int from);

  /// Like next(), but enforces the expected type (wire_error otherwise).
  frame expect(int from, frame_type type);

  /// Delivers frames from `from` to `fn` until a marker of type
  /// `marker_type` arrives; returns that marker's superstep tag.
  std::uint32_t until_marker(int from, frame_type marker_type,
                             const std::function<void(frame&)>& fn);

  /// Registers the observability drain for frame_type::telemetry. Telemetry
  /// frames are control-plane: they are diverted here at recv time and never
  /// enter the per-peer queues, so next()/expect()/until_marker() — and
  /// every phase decoder behind them — stay oblivious to the telemetry
  /// plane. With no sink registered (every rank but 0) they are discarded.
  void set_telemetry_sink(std::function<void(int from, frame&)> sink) {
    telemetry_sink_ = std::move(sink);
  }

  [[nodiscard]] comm_backend& backend() noexcept { return net_; }

 private:
  comm_backend& net_;
  std::vector<std::deque<frame>> pending_;  ///< parked frames, per peer
  std::function<void(int, frame&)> telemetry_sink_;
};

/// Folded result of one termination round.
struct vote_decision {
  bool stop = false;            ///< all ranks idle, confirmed — leave the loop
  bool cancel = false;          ///< some rank requested cooperative cancel
  std::uint64_t min_bucket = 0; ///< global min pending bucket (UINT64_MAX if none)
};

/// Two-phase all-to-all termination vote (propose, then confirm if idle).
class termination_vote {
 public:
  explicit termination_vote(peer_channels& chans);

  /// Runs one vote at the end of superstep `superstep`. `outstanding` is this
  /// rank's pending-work count, `cancel` its cooperative-stop flag,
  /// `min_bucket` its smallest pending bucket (UINT64_MAX when none).
  vote_decision round(std::uint64_t outstanding, bool cancel,
                      std::uint64_t min_bucket, std::uint32_t superstep);

  /// Total vote rounds executed (confirmation rounds included).
  [[nodiscard]] std::uint64_t rounds() const noexcept { return rounds_; }

 private:
  bucket_vote fold_once(const bucket_vote& mine, bool confirm);

  peer_channels& chans_;
  std::uint64_t rounds_ = 0;
};

}  // namespace dsteiner::runtime::net
