#include "runtime/net/dist_solver.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <map>
#include <queue>
#include <set>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "core/distance_graph.hpp"
#include "core/mst_prim.hpp"
#include "core/solver_detail.hpp"
#include "core/validation.hpp"
#include "graph/delta_stepping.hpp"
#include "runtime/comm.hpp"
#include "runtime/net/loopback_backend.hpp"
#include "runtime/net/termination.hpp"
#include "runtime/partition.hpp"
#include "util/cancellation.hpp"

namespace dsteiner::runtime::net {

namespace {

/// Visitors per data frame: keeps frames far under k_max_payload_bytes while
/// amortising the 8-byte header (8192 * 32B = 256 KiB payloads).
constexpr std::size_t k_batch_records = 8192;

using clock = std::chrono::steady_clock;

double seconds_since(clock::time_point start) {
  return std::chrono::duration<double>(clock::now() - start).count();
}

/// Shared mutable context for one rank's solve.
struct rank_ctx {
  const graph::csr_graph& graph;
  const core::solver_config& config;
  comm_backend& net;
  peer_channels chans;
  termination_vote vote;
  partitioner part;
  net_solve_report report;
  std::uint64_t modelled_epoch = 0;  ///< modelled bytes at last sample

  rank_ctx(const graph::csr_graph& g, const core::solver_config& cfg,
           comm_backend& backend)
      : graph(g),
        config(cfg),
        net(backend),
        chans(backend),
        vote(chans),
        part(g.num_vertices(), backend.world_size(), cfg.scheme) {
    report.rank = backend.rank();
    report.world = backend.world_size();
  }

  [[nodiscard]] int rank() const noexcept { return net.rank(); }
  [[nodiscard]] int world() const noexcept { return net.world_size(); }
  [[nodiscard]] bool owns(graph::vertex_id v) const noexcept {
    return part.owner(v) == net.rank();
  }

  void send_all(const frame& f) {
    for (int peer = 0; peer < world(); ++peer) {
      if (peer != rank()) net.send(peer, f);
    }
  }

  /// Closes one superstep: records a (measured, modelled) traffic sample and
  /// runs the termination vote. Throws operation_cancelled when the folded
  /// vote carries a cancel bit, keeping all ranks' unwinding in lockstep.
  vote_decision end_superstep(std::uint32_t superstep,
                              std::uint64_t outstanding,
                              std::uint64_t min_bucket,
                              std::uint64_t sent_before) {
    const vote_decision decision = vote.round(
        outstanding,
        config.budget != nullptr && config.budget->stop_requested(),
        min_bucket, superstep);
    ++report.supersteps;
    net_superstep_sample sample;
    sample.superstep = superstep;
    sample.bytes_measured = net.stats().bytes_sent - sent_before;
    sample.bytes_modelled = report.bytes_modelled - modelled_epoch;
    modelled_epoch = report.bytes_modelled;
    report.samples.push_back(sample);
    if (decision.cancel) {
      // Our own budget's reason if it tripped; otherwise another rank
      // cancelled and "cancelled" is the only honest description.
      util::cancel_reason why = util::cancel_reason::cancelled;
      if (config.budget != nullptr) {
        const util::cancel_reason mine = config.budget->stop_reason();
        if (mine != util::cancel_reason::none) why = mine;
      }
      throw util::operation_cancelled(why);
    }
    return decision;
  }
};

/// Phase 1: distributed Voronoi cell growth. Each superstep relaxes the
/// rank's admitted frontier to a local fixed point (remote candidates batch
/// per owner), exchanges batches, then votes on termination. Under bucketed
/// growth only visitors in globally-open buckets are drained; the rest wait,
/// and the vote's min-fold decides the next bucket — the distributed
/// analogue of the threaded engine's bucket schedule.
phase_metrics run_voronoi(rank_ctx& ctx,
                                std::span<const graph::vertex_id> seed_list,
                                core::steiner_state& state,
                                core::growth_stats& growth) {
  phase_metrics metrics{};
  const auto t0 = clock::now();

  const bool bucketed = ctx.config.growth == growth_mode::bucketed;
  const std::uint64_t delta =
      bucketed ? (ctx.config.bucket_delta != 0
                      ? ctx.config.bucket_delta
                      : graph::heuristic_delta(ctx.graph))
               : 0;
  growth.mode = ctx.config.growth;
  growth.delta = delta;
  const auto bucket_of = [&](graph::weight_t r) {
    return bucketed ? r / delta : 0;
  };

  std::vector<net_visitor> pending;
  for (const graph::vertex_id s : seed_list) {
    if (ctx.owns(s)) pending.push_back(net_visitor{s, s, s, 0});
  }

  std::vector<std::vector<net_visitor>> outbox(
      static_cast<std::size_t>(ctx.world()));
  // The local drain settles in lexicographic (r, t, vp) order — the paper's
  // priority-queue scheduling (Fig. 5). Any drain order reaches the same
  // fixed point (bit-identity does not depend on it), but FIFO/LIFO chaotic
  // relaxation re-corrects each vertex O(paths) times on weighted graphs and
  // the correction cascade amplifies across ranks; distance order settles
  // most vertices once per superstep.
  const auto visitor_after = [](const net_visitor& a, const net_visitor& b) {
    return std::tuple{a.r, a.t, a.vp} > std::tuple{b.r, b.t, b.vp};
  };
  std::priority_queue<net_visitor, std::vector<net_visitor>,
                      decltype(visitor_after)>
      worklist(visitor_after);
  std::vector<net_visitor> deferred;
  std::uint64_t bucket_limit = 0;  // seeds start in bucket 0

  for (std::uint32_t superstep = 0;; ++superstep) {
    const std::uint64_t sent_before = ctx.net.stats().bytes_sent;

    // Split the backlog into this superstep's open buckets and the rest.
    deferred.clear();
    for (net_visitor& v : pending) {
      if (bucket_of(v.r) <= bucket_limit) {
        worklist.push(v);
      } else {
        deferred.push_back(v);
      }
    }
    pending.swap(deferred);
    if (bucketed && !worklist.empty()) ++growth.buckets_processed;

    // Drain to a local fixed point; cross-partition candidates batch up.
    while (!worklist.empty()) {
      const net_visitor v = worklist.top();
      worklist.pop();
      if (std::tuple{v.r, v.t, v.vp} >= state.tuple_of(v.vj)) {
        ++metrics.previsit_rejections;
        continue;
      }
      state.distance[v.vj] = v.r;
      state.src[v.vj] = v.t;
      state.pred[v.vj] = v.vp;
      ++metrics.visitors_processed;
      const auto neighbors = ctx.graph.neighbors(v.vj);
      const auto weights = ctx.graph.weights(v.vj);
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        const net_visitor cand{neighbors[i], v.vj, v.t, v.r + weights[i]};
        if (std::tuple{cand.r, cand.t, cand.vp} >= state.tuple_of(cand.vj)) {
          continue;  // already superseded — never admissible later
        }
        if (ctx.owns(cand.vj)) {
          ++metrics.messages_local;
          if (bucket_of(cand.r) <= bucket_limit) {
            worklist.push(cand);
          } else {
            pending.push_back(cand);
          }
        } else {
          ++metrics.messages_remote;
          outbox[static_cast<std::size_t>(ctx.part.owner(cand.vj))]
              .push_back(cand);
        }
      }
    }

    // Flush batches, then the marker that bounds this superstep's data.
    for (int peer = 0; peer < ctx.world(); ++peer) {
      auto& out = outbox[static_cast<std::size_t>(peer)];
      if (peer != ctx.rank()) {
        for (std::size_t begin = 0; begin < out.size();
             begin += k_batch_records) {
          const std::size_t end =
              std::min(begin + k_batch_records, out.size());
          ctx.net.send(peer,
                       encode_visitor_batch(std::span(out).subspan(
                           begin, end - begin)));
        }
        ctx.report.bytes_modelled += out.size() * 32;
        ctx.net.send(peer, make_marker(superstep));
      }
      out.clear();
    }

    // Park everything the peers sent this superstep into the backlog,
    // dropping candidates the local state already beats.
    for (int peer = 0; peer < ctx.world(); ++peer) {
      if (peer == ctx.rank()) continue;
      ctx.chans.until_marker(peer, frame_type::superstep_marker, [&](frame& f) {
        for (const net_visitor& v : decode_visitor_batch(f)) {
          if (std::tuple{v.r, v.t, v.vp} < state.tuple_of(v.vj)) {
            pending.push_back(v);
          } else {
            ++metrics.previsit_rejections;
          }
        }
      });
    }

    metrics.queue_peak_items = std::max(
        metrics.queue_peak_items, static_cast<std::uint64_t>(pending.size()));
    ++metrics.rounds;

    std::uint64_t min_bucket = UINT64_MAX;
    for (const net_visitor& v : pending) {
      min_bucket = std::min(min_bucket, bucket_of(v.r));
    }
    const vote_decision decision = ctx.end_superstep(
        superstep, pending.size(), min_bucket, sent_before);
    if (decision.stop) break;
    bucket_limit = bucketed ? decision.min_bucket : 0;
  }

  metrics.queue_peak_bytes = metrics.queue_peak_items * sizeof(net_visitor);
  metrics.wall_seconds = seconds_since(t0);
  return metrics;
}

/// Boundary label sync between phases 1 and 2: each owned, reached vertex's
/// (src, d1) goes to every other rank owning one of its neighbours — exactly
/// the remote reads of the cross-edge scan. pred is deliberately not synced:
/// walk-backs only ever dereference pred on the owner.
void sync_ghosts(rank_ctx& ctx, core::steiner_state& state,
                 phase_metrics& metrics) {
  const std::uint64_t sent_before = ctx.net.stats().bytes_sent;
  std::vector<std::vector<ghost_label>> out(
      static_cast<std::size_t>(ctx.world()));
  std::vector<std::uint8_t> dest_mark(static_cast<std::size_t>(ctx.world()), 0);
  const graph::vertex_id n = ctx.graph.num_vertices();
  for (graph::vertex_id v = 0; v < n; ++v) {
    if (!ctx.owns(v) || !state.reached(v)) continue;
    std::fill(dest_mark.begin(), dest_mark.end(), 0);
    for (const graph::vertex_id u : ctx.graph.neighbors(v)) {
      const int owner = ctx.part.owner(u);
      if (owner == ctx.rank() || dest_mark[static_cast<std::size_t>(owner)]) {
        continue;
      }
      dest_mark[static_cast<std::size_t>(owner)] = 1;
      out[static_cast<std::size_t>(owner)].push_back(
          ghost_label{v, state.src[v], state.distance[v]});
    }
  }
  for (int peer = 0; peer < ctx.world(); ++peer) {
    auto& labels = out[static_cast<std::size_t>(peer)];
    if (peer != ctx.rank()) {
      for (std::size_t begin = 0; begin < labels.size();
           begin += k_batch_records) {
        const std::size_t end = std::min(begin + k_batch_records, labels.size());
        ctx.net.send(peer, encode_ghost_batch(
                               std::span(labels).subspan(begin, end - begin)));
      }
      ctx.report.ghost_labels_sent += labels.size();
      ctx.report.bytes_modelled += labels.size() * 24;
      metrics.messages_remote += labels.size();
      ctx.net.send(peer, make_marker(0));
    }
    labels.clear();
  }
  for (int peer = 0; peer < ctx.world(); ++peer) {
    if (peer == ctx.rank()) continue;
    ctx.chans.until_marker(peer, frame_type::superstep_marker, [&](frame& f) {
      for (const ghost_label& g : decode_ghost_batch(f)) {
        state.distance[g.v] = g.dist;
        state.src[g.v] = g.src;
        ++ctx.report.ghost_labels_applied;
      }
    });
  }
  net_superstep_sample sample;
  sample.superstep = 0;
  sample.bytes_measured = ctx.net.stats().bytes_sent - sent_before;
  sample.bytes_modelled = ctx.report.bytes_modelled - ctx.modelled_epoch;
  ctx.modelled_epoch = ctx.report.bytes_modelled;
  ctx.report.samples.push_back(sample);
}

/// Phase 2: partition-local cross-cell minimum bridges. Each undirected edge
/// is probed exactly once globally — at the owner of its lower endpoint,
/// whose ghost table holds the higher endpoint's label after sync_ghosts.
phase_metrics scan_local_min_edges(rank_ctx& ctx,
                                         const core::steiner_state& state,
                                         core::cross_edge_map& local_en) {
  phase_metrics metrics{};
  const auto t0 = clock::now();
  const graph::vertex_id n = ctx.graph.num_vertices();
  for (graph::vertex_id u = 0; u < n; ++u) {
    if (!ctx.owns(u) || !state.reached(u)) continue;
    const auto neighbors = ctx.graph.neighbors(u);
    const auto weights = ctx.graph.weights(u);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      const graph::vertex_id vt = neighbors[i];
      if (u >= vt || !state.reached(vt)) continue;
      if (state.src[u] == state.src[vt]) continue;
      ++metrics.visitors_processed;
      const core::cross_edge_entry candidate{
          state.distance[u] + weights[i] + state.distance[vt],
          std::min(u, vt), std::max(u, vt), weights[i]};
      const core::seed_pair key{std::min(state.src[u], state.src[vt]),
                                std::max(state.src[u], state.src[vt])};
      const auto [it, inserted] = local_en.emplace(key, candidate);
      if (!inserted) it->second = core::min_entry(it->second, candidate);
    }
  }
  metrics.rounds = 1;
  metrics.wall_seconds = seconds_since(t0);
  return metrics;
}

/// Phase 3: all-to-all exchange of the per-rank EN maps and a lexicographic
/// min-merge — the wire realisation of Allreduce(MIN) over EN. The merged
/// map's *content* is identical on every rank (min is order-free), which is
/// all downstream phases read: they iterate bridges in sorted key order.
phase_metrics reduce_global_en(rank_ctx& ctx,
                                     const core::cross_edge_map& local_en,
                                     core::cross_edge_map& global_en,
                                     const runtime::communicator& comm) {
  phase_metrics metrics{};
  const auto t0 = clock::now();
  const std::uint64_t sent_before = ctx.net.stats().bytes_sent;

  std::vector<wire_en_entry> wire;
  wire.reserve(local_en.size());
  for (const auto& [key, entry] : local_en) {
    wire.push_back(wire_en_entry{key.first, key.second, entry.bridge_distance,
                                 entry.u, entry.v, entry.edge_weight});
  }
  for (int peer = 0; peer < ctx.world(); ++peer) {
    if (peer == ctx.rank()) continue;
    for (std::size_t begin = 0; begin < wire.size();
         begin += k_batch_records) {
      const std::size_t end = std::min(begin + k_batch_records, wire.size());
      ctx.net.send(peer, encode_en_batch(
                             std::span(wire).subspan(begin, end - begin)));
    }
    ctx.net.send(peer, make_marker(0));
  }
  ctx.report.bytes_modelled +=
      wire.size() * 48 * static_cast<std::uint64_t>(ctx.world() - 1);

  global_en = local_en;
  const auto merge = [&](const wire_en_entry& e) {
    const core::cross_edge_entry entry{e.bridge_distance, e.u, e.v,
                                       e.edge_weight};
    const auto [it, inserted] =
        global_en.emplace(core::seed_pair{e.seed_a, e.seed_b}, entry);
    if (!inserted) it->second = core::min_entry(it->second, entry);
  };
  for (int peer = 0; peer < ctx.world(); ++peer) {
    if (peer == ctx.rank()) continue;
    ctx.chans.until_marker(peer, frame_type::superstep_marker, [&](frame& f) {
      for (const wire_en_entry& e : decode_en_batch(f)) merge(e);
    });
  }

  // Simulated-clock accounting mirrors the in-process collective: the
  // reduced map is the payload every rank ends up holding.
  constexpr std::uint64_t entry_bytes =
      sizeof(core::seed_pair) + sizeof(core::cross_edge_entry);
  comm.charge_collective(global_en.size() * entry_bytes, metrics);
  comm.note_buffer_bytes(global_en.size() * entry_bytes);

  net_superstep_sample sample;
  sample.superstep = 0;
  sample.bytes_measured = ctx.net.stats().bytes_sent - sent_before;
  sample.bytes_modelled = ctx.report.bytes_modelled - ctx.modelled_epoch;
  ctx.modelled_epoch = ctx.report.bytes_modelled;
  ctx.report.samples.push_back(sample);
  metrics.wall_seconds = seconds_since(t0);
  return metrics;
}

/// Phase 6: pred walk-backs from the surviving bridges, BSP over walk_batch
/// frames. Every rank derives the same bridge list (global_en is identical),
/// seeds its own endpoints, and marks/walks only owned vertices.
phase_metrics run_tree_edges(rank_ctx& ctx,
                                   const core::cross_edge_map& pruned_en,
                                   const core::steiner_state& state,
                                   std::vector<graph::weighted_edge>& local_es) {
  phase_metrics metrics{};
  const auto t0 = clock::now();

  std::vector<std::pair<core::seed_pair, core::cross_edge_entry>> bridges(
      pruned_en.begin(), pruned_en.end());
  std::sort(bridges.begin(), bridges.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  std::vector<std::uint8_t> in_tree(ctx.graph.num_vertices(), 0);
  std::vector<graph::vertex_id> worklist;
  for (const auto& [key, entry] : bridges) {
    if (ctx.owns(entry.u)) {
      local_es.push_back(
          graph::weighted_edge{entry.u, entry.v, entry.edge_weight});
      worklist.push_back(entry.u);
    }
    if (ctx.owns(entry.v)) worklist.push_back(entry.v);
  }

  std::vector<std::vector<graph::vertex_id>> outbox(
      static_cast<std::size_t>(ctx.world()));
  std::vector<graph::vertex_id> next;
  for (std::uint32_t superstep = 0;; ++superstep) {
    const std::uint64_t sent_before = ctx.net.stats().bytes_sent;
    while (!worklist.empty()) {
      const graph::vertex_id vj = worklist.back();
      worklist.pop_back();
      if (in_tree[vj] != 0) {
        ++metrics.previsit_rejections;
        continue;
      }
      in_tree[vj] = 1;
      ++metrics.visitors_processed;
      if (vj == state.src[vj]) continue;  // reached the cell's seed
      const graph::vertex_id p = state.pred[vj];
      const auto w = ctx.graph.edge_weight(vj, p);
      if (!w.has_value()) {
        throw std::logic_error("tree walk-back crossed a missing edge");
      }
      local_es.push_back(
          graph::weighted_edge{std::min(p, vj), std::max(p, vj), *w});
      if (p == state.src[vj]) continue;  // next hop is the seed: edge covers it
      if (ctx.owns(p)) {
        ++metrics.messages_local;
        worklist.push_back(p);
      } else {
        ++metrics.messages_remote;
        outbox[static_cast<std::size_t>(ctx.part.owner(p))].push_back(p);
      }
    }

    for (int peer = 0; peer < ctx.world(); ++peer) {
      auto& out = outbox[static_cast<std::size_t>(peer)];
      if (peer != ctx.rank()) {
        for (std::size_t begin = 0; begin < out.size();
             begin += k_batch_records) {
          const std::size_t end = std::min(begin + k_batch_records, out.size());
          ctx.net.send(peer, encode_walk_batch(std::span(out).subspan(
                                 begin, end - begin)));
        }
        ctx.report.bytes_modelled += out.size() * 8;
        ctx.net.send(peer, make_marker(superstep));
      }
      out.clear();
    }
    next.clear();
    for (int peer = 0; peer < ctx.world(); ++peer) {
      if (peer == ctx.rank()) continue;
      ctx.chans.until_marker(peer, frame_type::superstep_marker, [&](frame& f) {
        for (const graph::vertex_id v : decode_walk_batch(f)) {
          if (in_tree[v] == 0) next.push_back(v);
        }
      });
    }
    worklist.swap(next);
    ++metrics.rounds;
    const vote_decision decision = ctx.end_superstep(
        superstep, worklist.size(), UINT64_MAX, sent_before);
    if (decision.stop) break;
  }
  metrics.wall_seconds = seconds_since(t0);
  return metrics;
}

/// Final assembly: allgather the per-rank edge lists and canonically sort.
phase_metrics gather_tree(rank_ctx& ctx,
                                std::vector<graph::weighted_edge>& local_es,
                                std::vector<graph::weighted_edge>& tree) {
  phase_metrics metrics{};
  const auto t0 = clock::now();
  const std::uint64_t sent_before = ctx.net.stats().bytes_sent;
  for (int peer = 0; peer < ctx.world(); ++peer) {
    if (peer == ctx.rank()) continue;
    for (std::size_t begin = 0; begin < local_es.size();
         begin += k_batch_records) {
      const std::size_t end = std::min(begin + k_batch_records, local_es.size());
      ctx.net.send(peer, encode_edge_batch(std::span(local_es).subspan(
                             begin, end - begin)));
    }
    ctx.net.send(peer, make_marker(0));
  }
  ctx.report.bytes_modelled +=
      local_es.size() * 24 * static_cast<std::uint64_t>(ctx.world() - 1);

  tree = std::move(local_es);
  for (int peer = 0; peer < ctx.world(); ++peer) {
    if (peer == ctx.rank()) continue;
    ctx.chans.until_marker(peer, frame_type::superstep_marker, [&](frame& f) {
      for (const graph::weighted_edge& e : decode_edge_batch(f)) {
        tree.push_back(e);
      }
    });
  }
  std::sort(tree.begin(), tree.end(),
            [](const graph::weighted_edge& a, const graph::weighted_edge& b) {
              return std::tuple{a.source, a.target} <
                     std::tuple{b.source, b.target};
            });
  net_superstep_sample sample;
  sample.superstep = 0;
  sample.bytes_measured = ctx.net.stats().bytes_sent - sent_before;
  sample.bytes_modelled = ctx.report.bytes_modelled - ctx.modelled_epoch;
  ctx.modelled_epoch = ctx.report.bytes_modelled;
  ctx.report.samples.push_back(sample);
  metrics.wall_seconds = seconds_since(t0);
  return metrics;
}

}  // namespace

core::steiner_result solve_rank(const graph::csr_graph& graph,
                                std::span<const graph::vertex_id> seeds,
                                const core::solver_config& config,
                                comm_backend& net, net_solve_report* report) {
  // Deterministic preprocessing — identical on every rank, so a rejected
  // seed list throws everywhere before any traffic flows.
  const std::vector<graph::vertex_id> seed_list =
      core::detail::dedup_seeds(graph, seeds);

  core::steiner_result result;
  result.num_seeds = seed_list.size();
  rank_ctx ctx(graph, config, net);

  if (seed_list.size() > 1) {
    core::steiner_state state(graph.num_vertices());
    result.phases.phase(phase_names::voronoi) =
        run_voronoi(ctx, seed_list, state, result.growth);

    auto& local_metrics = result.phases.phase(phase_names::local_min_edge);
    sync_ghosts(ctx, state, local_metrics);
    core::cross_edge_map local_en;
    {
      phase_metrics scan = scan_local_min_edges(ctx, state, local_en);
      scan.messages_remote += local_metrics.messages_remote;
      local_metrics = scan;
    }
    if (config.budget != nullptr) config.budget->check();

    const runtime::communicator comm(ctx.world(), config.costs);
    core::cross_edge_map global_en;
    result.phases.phase(phase_names::global_min_edge) =
        reduce_global_en(ctx, local_en, global_en, comm);
    result.distance_graph_edges = global_en.size();

    auto& mst_metrics = result.phases.phase(phase_names::mst);
    const auto mst_t0 = clock::now();
    const core::distance_graph_mst mst = core::compute_distance_graph_mst(
        global_en, seed_list, comm, mst_metrics);
    mst_metrics.wall_seconds = seconds_since(mst_t0);
    result.spans_all_seeds = mst.spans_all_seeds;
    if (!mst.spans_all_seeds && !config.allow_disconnected_seeds) {
      throw std::runtime_error("seeds are not mutually reachable");
    }

    auto& prune_metrics = result.phases.phase(phase_names::pruning);
    const auto prune_t0 = clock::now();
    {
      const std::set<core::seed_pair> keep(mst.mst_pairs.begin(),
                                           mst.mst_pairs.end());
      std::erase_if(global_en, [&](const auto& kv) {
        return keep.find(kv.first) == keep.end();
      });
      constexpr std::uint64_t entry_bytes =
          sizeof(core::seed_pair) + sizeof(core::cross_edge_entry);
      comm.charge_collective(global_en.size() * entry_bytes, prune_metrics);
    }
    prune_metrics.wall_seconds = seconds_since(prune_t0);
    if (config.budget != nullptr) config.budget->check();

    std::vector<graph::weighted_edge> local_es;
    result.phases.phase(phase_names::tree_edge) =
        run_tree_edges(ctx, global_en, state, local_es);

    phase_metrics gather =
        gather_tree(ctx, local_es, result.tree_edges);
    result.phases.phase(phase_names::tree_edge).merge(gather);

    for (const graph::weighted_edge& e : result.tree_edges) {
      result.total_distance += e.weight;
    }

    result.memory.graph_bytes = graph.memory_bytes();
    result.memory.state_bytes =
        state.memory_bytes() + graph.num_vertices() * sizeof(std::uint8_t);
    result.memory.queue_peak_bytes =
        result.phases.phase(phase_names::voronoi).queue_peak_bytes;
    result.memory.distance_graph_bytes =
        global_en.size() *
        (sizeof(core::seed_pair) + sizeof(core::cross_edge_entry));
    result.memory.collective_buffer_bytes = comm.peak_buffer_bytes();
    result.memory.tree_bytes =
        result.tree_edges.size() * sizeof(graph::weighted_edge);

    if (config.validate) {
      const core::validation_result check =
          core::validate_steiner_tree(graph, seed_list, result.tree_edges);
      if (!check) {
        throw std::runtime_error("distributed solve failed validation: " +
                                 check.error);
      }
    }
  } else {
    result.memory.graph_bytes = graph.memory_bytes();
  }

  ctx.report.vote_rounds = ctx.vote.rounds();
  ctx.report.stats = net.stats();
  if (report != nullptr) *report = std::move(ctx.report);
  return result;
}

core::steiner_result solve_loopback(
    const graph::csr_graph& graph, std::span<const graph::vertex_id> seeds,
    const core::solver_config& config, int world,
    std::vector<net_solve_report>* reports) {
  if (world <= 0) {
    throw std::invalid_argument("solve_loopback: world must be positive");
  }
  loopback_mesh mesh(world);
  std::vector<core::steiner_result> results(static_cast<std::size_t>(world));
  std::vector<net_solve_report> rank_reports(static_cast<std::size_t>(world));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(world));

  const auto run = [&](int rank) noexcept {
    try {
      results[static_cast<std::size_t>(rank)] =
          solve_rank(graph, seeds, config, mesh.endpoint(rank),
                     &rank_reports[static_cast<std::size_t>(rank)]);
    } catch (...) {
      errors[static_cast<std::size_t>(rank)] = std::current_exception();
      mesh.close_all();  // unblock peers so every rank unwinds
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(world - 1));
  for (int rank = 1; rank < world; ++rank) {
    threads.emplace_back(run, rank);
  }
  run(0);
  for (std::thread& t : threads) t.join();

  // Prefer the root cause over the wire_errors peers see once the mesh is
  // torn down, and cancellation over everything (the service maps it).
  std::exception_ptr first;
  for (const std::exception_ptr& e : errors) {
    if (!e) continue;
    if (!first) first = e;
    try {
      std::rethrow_exception(e);
    } catch (const util::operation_cancelled&) {
      first = e;
      break;
    } catch (const wire_error&) {
      // keep looking for a more specific cause
    } catch (...) {
      first = e;
    }
  }
  if (first) std::rethrow_exception(first);

  if (reports != nullptr) *reports = std::move(rank_reports);
  return std::move(results.front());
}

}  // namespace dsteiner::runtime::net
