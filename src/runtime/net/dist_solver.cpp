#include "runtime/net/dist_solver.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <map>
#include <queue>
#include <set>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "core/distance_graph.hpp"
#include "core/mst_prim.hpp"
#include "core/solver_detail.hpp"
#include "core/validation.hpp"
#include "graph/delta_stepping.hpp"
#include "runtime/comm.hpp"
#include "runtime/net/loopback_backend.hpp"
#include "runtime/net/termination.hpp"
#include "runtime/partition.hpp"
#include "util/cancellation.hpp"

namespace dsteiner::runtime::net {

namespace {

/// Visitors per data frame: keeps frames far under k_max_payload_bytes while
/// amortising the 8-byte header (8192 * 32B = 256 KiB payloads).
constexpr std::size_t k_batch_records = 8192;

using clock = std::chrono::steady_clock;

double seconds_since(clock::time_point start) {
  return std::chrono::duration<double>(clock::now() - start).count();
}

/// Per-sample timing/traffic scratch for the telemetry plane, reset at each
/// superstep boundary.
struct telemetry_scratch {
  double compute_seconds = 0.0;
  double send_flush_seconds = 0.0;
  double recv_wait_seconds = 0.0;
  std::uint64_t visitors = 0;
  std::uint64_t remote_msgs = 0;
  std::vector<telemetry_peer_traffic> peers;
};

std::uint64_t to_nanos(double s) {
  return s <= 0.0 ? 0 : static_cast<std::uint64_t>(s * 1e9);
}

/// Shared mutable context for one rank's solve.
struct rank_ctx {
  const graph::csr_graph& graph;
  const core::solver_config& config;
  comm_backend& net;
  peer_channels chans;
  termination_vote vote;
  partitioner part;
  net_solve_report report;
  std::uint64_t modelled_epoch = 0;  ///< modelled bytes at last sample
  const bool telemetry_on;
  /// Rank 0 only (under loopback every rank shares one config, so gating on
  /// rank keeps the trace single-writer; rank 0 runs on the caller thread).
  obs::query_trace* const trace;
  telemetry_scratch scratch;
  std::vector<rank_telemetry> cluster_rx;  ///< rank 0: all ranks' samples

  rank_ctx(const graph::csr_graph& g, const core::solver_config& cfg,
           comm_backend& backend)
      : graph(g),
        config(cfg),
        net(backend),
        chans(backend),
        vote(chans),
        part(g.num_vertices(), backend.world_size(), cfg.scheme),
        telemetry_on(cfg.net_telemetry),
        trace(backend.rank() == 0 ? cfg.trace : nullptr) {
    report.rank = backend.rank();
    report.world = backend.world_size();
    scratch.peers.assign(static_cast<std::size_t>(backend.world_size()), {});
    if (telemetry_on && backend.rank() == 0) {
      chans.set_telemetry_sink([this](int /*from*/, frame& f) {
        cluster_rx.push_back(decode_telemetry(f));
      });
    }
  }

  [[nodiscard]] int rank() const noexcept { return net.rank(); }
  [[nodiscard]] int world() const noexcept { return net.world_size(); }
  [[nodiscard]] bool owns(graph::vertex_id v) const noexcept {
    return part.owner(v) == net.rank();
  }

  void send_all(const frame& f) {
    for (int peer = 0; peer < world(); ++peer) {
      if (peer != rank()) net.send(peer, f);
    }
  }

  void reset_scratch() {
    scratch.compute_seconds = 0.0;
    scratch.send_flush_seconds = 0.0;
    scratch.recv_wait_seconds = 0.0;
    scratch.visitors = 0;
    scratch.remote_msgs = 0;
    std::fill(scratch.peers.begin(), scratch.peers.end(),
              telemetry_peer_traffic{});
  }

  /// Sends one data frame, attributing its wire bytes to the current
  /// telemetry window's per-peer traffic. Control frames (markers, votes)
  /// bypass this on purpose — the plane reports application communication.
  void send_data(int peer, const frame& f) {
    if (telemetry_on) {
      telemetry_peer_traffic& t = scratch.peers[static_cast<std::size_t>(peer)];
      ++t.batches_sent;
      t.bytes_sent += wire_bytes(f);
    }
    net.send(peer, f);
  }

  /// until_marker wrapper counting received data frames into the window.
  std::uint32_t drain_until_marker(int peer,
                                   const std::function<void(frame&)>& fn) {
    return chans.until_marker(
        peer, frame_type::superstep_marker, [&](frame& f) {
          if (telemetry_on) {
            telemetry_peer_traffic& t =
                scratch.peers[static_cast<std::size_t>(peer)];
            ++t.batches_received;
            t.bytes_received += wire_bytes(f);
          }
          fn(f);
        });
  }

  /// Builds this window's sample from the scratch and routes it: rank 0
  /// keeps it locally, other ranks push it to rank 0 as a telemetry frame
  /// (its payload charged to the perf model like any other payload, so the
  /// modelled/measured invariants keep holding with telemetry on). Also
  /// mirrors an aggregate row into the rank-0 engine probe, which is what
  /// puts distributed solves into /tracez and the slow-query log.
  void emit_telemetry(telemetry_phase phase, std::uint32_t superstep,
                      std::uint64_t min_bucket, std::uint64_t ghost_labels,
                      double vote_seconds, std::uint64_t backlog) {
    if (trace != nullptr) {
      obs::superstep_sample probe_sample;
      probe_sample.superstep = superstep;
      probe_sample.rank = -1;  // aggregate row: this whole rank's superstep
      probe_sample.visitors = static_cast<std::uint32_t>(scratch.visitors);
      probe_sample.sent = static_cast<std::uint32_t>(scratch.remote_msgs);
      probe_sample.backlog = static_cast<std::uint32_t>(backlog);
      probe_sample.compute_seconds =
          static_cast<float>(scratch.compute_seconds);
      probe_sample.barrier_wait_seconds =
          static_cast<float>(scratch.recv_wait_seconds + vote_seconds);
      probe_sample.bucket = min_bucket;
      trace->probe().record(0, probe_sample);
    }
    if (!telemetry_on) return;
    rank_telemetry t;
    t.rank = rank();
    t.phase = static_cast<std::uint8_t>(phase);
    t.superstep = superstep;
    t.visitors = scratch.visitors;
    t.min_bucket = min_bucket;
    t.ghost_labels = ghost_labels;
    t.compute_nanos = to_nanos(scratch.compute_seconds);
    t.send_flush_nanos = to_nanos(scratch.send_flush_seconds);
    t.recv_wait_nanos = to_nanos(scratch.recv_wait_seconds);
    t.vote_nanos = to_nanos(vote_seconds);
    t.peers = scratch.peers;
    if (rank() != 0) {
      const frame f = encode_telemetry(t);
      report.bytes_modelled += f.payload.size();
      net.send(0, f);
    } else {
      cluster_rx.push_back(t);
    }
    report.telemetry.push_back(std::move(t));
  }

  /// One-shot exchange phases (ghost sync, EN reduce, gather) close their
  /// telemetry window with this instead of end_superstep: no vote ran.
  void emit_phase_telemetry(telemetry_phase phase,
                            std::uint64_t ghost_labels = 0) {
    emit_telemetry(phase, 0, UINT64_MAX, ghost_labels, 0.0, 0);
  }

  /// Closes one superstep: runs the termination vote, emits the telemetry
  /// sample, and records a (measured, modelled) traffic sample — in that
  /// order, so the telemetry frame's own bytes land in the same traffic
  /// sample as the superstep it describes. Throws operation_cancelled when
  /// the folded vote carries a cancel bit, keeping all ranks' unwinding in
  /// lockstep.
  vote_decision end_superstep(telemetry_phase phase, std::uint32_t superstep,
                              std::uint64_t outstanding,
                              std::uint64_t min_bucket,
                              std::uint64_t sent_before) {
    const auto vote_t0 = clock::now();
    const vote_decision decision = vote.round(
        outstanding,
        config.budget != nullptr && config.budget->stop_requested(),
        min_bucket, superstep);
    const double vote_seconds = seconds_since(vote_t0);
    ++report.supersteps;
    emit_telemetry(phase, superstep, min_bucket, 0, vote_seconds, outstanding);
    net_superstep_sample sample;
    sample.superstep = superstep;
    sample.bytes_measured = net.stats().bytes_sent - sent_before;
    sample.bytes_modelled = report.bytes_modelled - modelled_epoch;
    modelled_epoch = report.bytes_modelled;
    report.samples.push_back(sample);
    if (decision.cancel) {
      // Our own budget's reason if it tripped; otherwise another rank
      // cancelled and "cancelled" is the only honest description.
      util::cancel_reason why = util::cancel_reason::cancelled;
      if (config.budget != nullptr) {
        const util::cancel_reason mine = config.budget->stop_reason();
        if (mine != util::cancel_reason::none) why = mine;
      }
      throw util::operation_cancelled(why);
    }
    return decision;
  }
};

/// Phase 1: distributed Voronoi cell growth. Each superstep relaxes the
/// rank's admitted frontier to a local fixed point (remote candidates batch
/// per owner), exchanges batches, then votes on termination. Under bucketed
/// growth only visitors in globally-open buckets are drained; the rest wait,
/// and the vote's min-fold decides the next bucket — the distributed
/// analogue of the threaded engine's bucket schedule.
phase_metrics run_voronoi(rank_ctx& ctx,
                                std::span<const graph::vertex_id> seed_list,
                                core::steiner_state& state,
                                core::growth_stats& growth) {
  phase_metrics metrics{};
  const auto t0 = clock::now();

  const bool bucketed = ctx.config.growth == growth_mode::bucketed;
  const std::uint64_t delta =
      bucketed ? (ctx.config.bucket_delta != 0
                      ? ctx.config.bucket_delta
                      : graph::heuristic_delta(ctx.graph))
               : 0;
  growth.mode = ctx.config.growth;
  growth.delta = delta;
  const auto bucket_of = [&](graph::weight_t r) {
    return bucketed ? r / delta : 0;
  };

  std::vector<net_visitor> pending;
  for (const graph::vertex_id s : seed_list) {
    if (ctx.owns(s)) pending.push_back(net_visitor{s, s, s, 0});
  }

  std::vector<std::vector<net_visitor>> outbox(
      static_cast<std::size_t>(ctx.world()));
  // The local drain settles in lexicographic (r, t, vp) order — the paper's
  // priority-queue scheduling (Fig. 5). Any drain order reaches the same
  // fixed point (bit-identity does not depend on it), but FIFO/LIFO chaotic
  // relaxation re-corrects each vertex O(paths) times on weighted graphs and
  // the correction cascade amplifies across ranks; distance order settles
  // most vertices once per superstep.
  const auto visitor_after = [](const net_visitor& a, const net_visitor& b) {
    return std::tuple{a.r, a.t, a.vp} > std::tuple{b.r, b.t, b.vp};
  };
  std::priority_queue<net_visitor, std::vector<net_visitor>,
                      decltype(visitor_after)>
      worklist(visitor_after);
  std::vector<net_visitor> deferred;
  std::uint64_t bucket_limit = 0;  // seeds start in bucket 0

  for (std::uint32_t superstep = 0;; ++superstep) {
    const std::uint64_t sent_before = ctx.net.stats().bytes_sent;
    ctx.reset_scratch();
    const std::uint64_t visitors_before = metrics.visitors_processed;
    const std::uint64_t remote_before = metrics.messages_remote;
    const auto compute_t0 = clock::now();

    // Split the backlog into this superstep's open buckets and the rest.
    deferred.clear();
    for (net_visitor& v : pending) {
      if (bucket_of(v.r) <= bucket_limit) {
        worklist.push(v);
      } else {
        deferred.push_back(v);
      }
    }
    pending.swap(deferred);
    if (bucketed && !worklist.empty()) ++growth.buckets_processed;

    // Drain to a local fixed point; cross-partition candidates batch up.
    while (!worklist.empty()) {
      const net_visitor v = worklist.top();
      worklist.pop();
      if (std::tuple{v.r, v.t, v.vp} >= state.tuple_of(v.vj)) {
        ++metrics.previsit_rejections;
        continue;
      }
      state.distance[v.vj] = v.r;
      state.src[v.vj] = v.t;
      state.pred[v.vj] = v.vp;
      ++metrics.visitors_processed;
      const auto neighbors = ctx.graph.neighbors(v.vj);
      const auto weights = ctx.graph.weights(v.vj);
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        const net_visitor cand{neighbors[i], v.vj, v.t, v.r + weights[i]};
        if (std::tuple{cand.r, cand.t, cand.vp} >= state.tuple_of(cand.vj)) {
          continue;  // already superseded — never admissible later
        }
        if (ctx.owns(cand.vj)) {
          ++metrics.messages_local;
          if (bucket_of(cand.r) <= bucket_limit) {
            worklist.push(cand);
          } else {
            pending.push_back(cand);
          }
        } else {
          ++metrics.messages_remote;
          outbox[static_cast<std::size_t>(ctx.part.owner(cand.vj))]
              .push_back(cand);
        }
      }
    }

    ctx.scratch.compute_seconds = seconds_since(compute_t0);
    ctx.scratch.visitors = metrics.visitors_processed - visitors_before;
    ctx.scratch.remote_msgs = metrics.messages_remote - remote_before;

    // Flush batches, then the marker that bounds this superstep's data.
    const auto flush_t0 = clock::now();
    for (int peer = 0; peer < ctx.world(); ++peer) {
      auto& out = outbox[static_cast<std::size_t>(peer)];
      if (peer != ctx.rank()) {
        for (std::size_t begin = 0; begin < out.size();
             begin += k_batch_records) {
          const std::size_t end =
              std::min(begin + k_batch_records, out.size());
          ctx.send_data(peer,
                        encode_visitor_batch(std::span(out).subspan(
                            begin, end - begin)));
        }
        ctx.report.bytes_modelled += out.size() * 32;
        ctx.net.send(peer, make_marker(superstep));
      }
      out.clear();
    }
    ctx.scratch.send_flush_seconds = seconds_since(flush_t0);

    // Park everything the peers sent this superstep into the backlog,
    // dropping candidates the local state already beats.
    const auto recv_t0 = clock::now();
    for (int peer = 0; peer < ctx.world(); ++peer) {
      if (peer == ctx.rank()) continue;
      ctx.drain_until_marker(peer, [&](frame& f) {
        for (const net_visitor& v : decode_visitor_batch(f)) {
          if (std::tuple{v.r, v.t, v.vp} < state.tuple_of(v.vj)) {
            pending.push_back(v);
          } else {
            ++metrics.previsit_rejections;
          }
        }
      });
    }
    ctx.scratch.recv_wait_seconds = seconds_since(recv_t0);

    metrics.queue_peak_items = std::max(
        metrics.queue_peak_items, static_cast<std::uint64_t>(pending.size()));
    ++metrics.rounds;

    std::uint64_t min_bucket = UINT64_MAX;
    for (const net_visitor& v : pending) {
      min_bucket = std::min(min_bucket, bucket_of(v.r));
    }
    const vote_decision decision = ctx.end_superstep(
        telemetry_phase::voronoi, superstep, pending.size(), min_bucket,
        sent_before);
    if (decision.stop) break;
    bucket_limit = bucketed ? decision.min_bucket : 0;
  }

  metrics.queue_peak_bytes = metrics.queue_peak_items * sizeof(net_visitor);
  metrics.wall_seconds = seconds_since(t0);
  return metrics;
}

/// Boundary label sync between phases 1 and 2: each owned, reached vertex's
/// (src, d1) goes to every other rank owning one of its neighbours — exactly
/// the remote reads of the cross-edge scan. pred is deliberately not synced:
/// walk-backs only ever dereference pred on the owner.
void sync_ghosts(rank_ctx& ctx, core::steiner_state& state,
                 phase_metrics& metrics) {
  const std::uint64_t sent_before = ctx.net.stats().bytes_sent;
  ctx.reset_scratch();
  const std::uint64_t ghosts_before = ctx.report.ghost_labels_sent;
  const auto compute_t0 = clock::now();
  std::vector<std::vector<ghost_label>> out(
      static_cast<std::size_t>(ctx.world()));
  std::vector<std::uint8_t> dest_mark(static_cast<std::size_t>(ctx.world()), 0);
  const graph::vertex_id n = ctx.graph.num_vertices();
  for (graph::vertex_id v = 0; v < n; ++v) {
    if (!ctx.owns(v) || !state.reached(v)) continue;
    std::fill(dest_mark.begin(), dest_mark.end(), 0);
    for (const graph::vertex_id u : ctx.graph.neighbors(v)) {
      const int owner = ctx.part.owner(u);
      if (owner == ctx.rank() || dest_mark[static_cast<std::size_t>(owner)]) {
        continue;
      }
      dest_mark[static_cast<std::size_t>(owner)] = 1;
      out[static_cast<std::size_t>(owner)].push_back(
          ghost_label{v, state.src[v], state.distance[v]});
    }
  }
  ctx.scratch.compute_seconds = seconds_since(compute_t0);
  const auto flush_t0 = clock::now();
  for (int peer = 0; peer < ctx.world(); ++peer) {
    auto& labels = out[static_cast<std::size_t>(peer)];
    if (peer != ctx.rank()) {
      for (std::size_t begin = 0; begin < labels.size();
           begin += k_batch_records) {
        const std::size_t end = std::min(begin + k_batch_records, labels.size());
        ctx.send_data(peer, encode_ghost_batch(
                                std::span(labels).subspan(begin, end - begin)));
      }
      ctx.report.ghost_labels_sent += labels.size();
      ctx.report.bytes_modelled += labels.size() * 24;
      metrics.messages_remote += labels.size();
      ctx.net.send(peer, make_marker(0));
    }
    labels.clear();
  }
  ctx.scratch.send_flush_seconds = seconds_since(flush_t0);
  const auto recv_t0 = clock::now();
  for (int peer = 0; peer < ctx.world(); ++peer) {
    if (peer == ctx.rank()) continue;
    ctx.drain_until_marker(peer, [&](frame& f) {
      for (const ghost_label& g : decode_ghost_batch(f)) {
        state.distance[g.v] = g.dist;
        state.src[g.v] = g.src;
        ++ctx.report.ghost_labels_applied;
      }
    });
  }
  ctx.scratch.recv_wait_seconds = seconds_since(recv_t0);
  ctx.emit_phase_telemetry(telemetry_phase::ghost_sync,
                           ctx.report.ghost_labels_sent - ghosts_before);
  net_superstep_sample sample;
  sample.superstep = 0;
  sample.bytes_measured = ctx.net.stats().bytes_sent - sent_before;
  sample.bytes_modelled = ctx.report.bytes_modelled - ctx.modelled_epoch;
  ctx.modelled_epoch = ctx.report.bytes_modelled;
  ctx.report.samples.push_back(sample);
}

/// Phase 2: partition-local cross-cell minimum bridges. Each undirected edge
/// is probed exactly once globally — at the owner of its lower endpoint,
/// whose ghost table holds the higher endpoint's label after sync_ghosts.
phase_metrics scan_local_min_edges(rank_ctx& ctx,
                                         const core::steiner_state& state,
                                         core::cross_edge_map& local_en) {
  phase_metrics metrics{};
  const auto t0 = clock::now();
  const graph::vertex_id n = ctx.graph.num_vertices();
  for (graph::vertex_id u = 0; u < n; ++u) {
    if (!ctx.owns(u) || !state.reached(u)) continue;
    const auto neighbors = ctx.graph.neighbors(u);
    const auto weights = ctx.graph.weights(u);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      const graph::vertex_id vt = neighbors[i];
      if (u >= vt || !state.reached(vt)) continue;
      if (state.src[u] == state.src[vt]) continue;
      ++metrics.visitors_processed;
      const core::cross_edge_entry candidate{
          state.distance[u] + weights[i] + state.distance[vt],
          std::min(u, vt), std::max(u, vt), weights[i]};
      const core::seed_pair key{std::min(state.src[u], state.src[vt]),
                                std::max(state.src[u], state.src[vt])};
      const auto [it, inserted] = local_en.emplace(key, candidate);
      if (!inserted) it->second = core::min_entry(it->second, candidate);
    }
  }
  metrics.rounds = 1;
  metrics.wall_seconds = seconds_since(t0);
  return metrics;
}

/// Phase 3: all-to-all exchange of the per-rank EN maps and a lexicographic
/// min-merge — the wire realisation of Allreduce(MIN) over EN. The merged
/// map's *content* is identical on every rank (min is order-free), which is
/// all downstream phases read: they iterate bridges in sorted key order.
phase_metrics reduce_global_en(rank_ctx& ctx,
                                     const core::cross_edge_map& local_en,
                                     core::cross_edge_map& global_en,
                                     const runtime::communicator& comm) {
  phase_metrics metrics{};
  const auto t0 = clock::now();
  const std::uint64_t sent_before = ctx.net.stats().bytes_sent;
  ctx.reset_scratch();

  const auto compute_t0 = clock::now();
  std::vector<wire_en_entry> wire;
  wire.reserve(local_en.size());
  for (const auto& [key, entry] : local_en) {
    wire.push_back(wire_en_entry{key.first, key.second, entry.bridge_distance,
                                 entry.u, entry.v, entry.edge_weight});
  }
  ctx.scratch.compute_seconds = seconds_since(compute_t0);
  const auto flush_t0 = clock::now();
  for (int peer = 0; peer < ctx.world(); ++peer) {
    if (peer == ctx.rank()) continue;
    for (std::size_t begin = 0; begin < wire.size();
         begin += k_batch_records) {
      const std::size_t end = std::min(begin + k_batch_records, wire.size());
      ctx.send_data(peer, encode_en_batch(
                              std::span(wire).subspan(begin, end - begin)));
    }
    ctx.net.send(peer, make_marker(0));
  }
  ctx.report.bytes_modelled +=
      wire.size() * 48 * static_cast<std::uint64_t>(ctx.world() - 1);
  ctx.scratch.send_flush_seconds = seconds_since(flush_t0);

  global_en = local_en;
  const auto merge = [&](const wire_en_entry& e) {
    const core::cross_edge_entry entry{e.bridge_distance, e.u, e.v,
                                       e.edge_weight};
    const auto [it, inserted] =
        global_en.emplace(core::seed_pair{e.seed_a, e.seed_b}, entry);
    if (!inserted) it->second = core::min_entry(it->second, entry);
  };
  const auto recv_t0 = clock::now();
  for (int peer = 0; peer < ctx.world(); ++peer) {
    if (peer == ctx.rank()) continue;
    ctx.drain_until_marker(peer, [&](frame& f) {
      for (const wire_en_entry& e : decode_en_batch(f)) merge(e);
    });
  }
  ctx.scratch.recv_wait_seconds = seconds_since(recv_t0);
  ctx.emit_phase_telemetry(telemetry_phase::en_reduce);

  // Simulated-clock accounting mirrors the in-process collective: the
  // reduced map is the payload every rank ends up holding.
  constexpr std::uint64_t entry_bytes =
      sizeof(core::seed_pair) + sizeof(core::cross_edge_entry);
  comm.charge_collective(global_en.size() * entry_bytes, metrics);
  comm.note_buffer_bytes(global_en.size() * entry_bytes);

  net_superstep_sample sample;
  sample.superstep = 0;
  sample.bytes_measured = ctx.net.stats().bytes_sent - sent_before;
  sample.bytes_modelled = ctx.report.bytes_modelled - ctx.modelled_epoch;
  ctx.modelled_epoch = ctx.report.bytes_modelled;
  ctx.report.samples.push_back(sample);
  metrics.wall_seconds = seconds_since(t0);
  return metrics;
}

/// Phase 6: pred walk-backs from the surviving bridges, BSP over walk_batch
/// frames. Every rank derives the same bridge list (global_en is identical),
/// seeds its own endpoints, and marks/walks only owned vertices.
phase_metrics run_tree_edges(rank_ctx& ctx,
                                   const core::cross_edge_map& pruned_en,
                                   const core::steiner_state& state,
                                   std::vector<graph::weighted_edge>& local_es) {
  phase_metrics metrics{};
  const auto t0 = clock::now();

  std::vector<std::pair<core::seed_pair, core::cross_edge_entry>> bridges(
      pruned_en.begin(), pruned_en.end());
  std::sort(bridges.begin(), bridges.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  std::vector<std::uint8_t> in_tree(ctx.graph.num_vertices(), 0);
  std::vector<graph::vertex_id> worklist;
  for (const auto& [key, entry] : bridges) {
    if (ctx.owns(entry.u)) {
      local_es.push_back(
          graph::weighted_edge{entry.u, entry.v, entry.edge_weight});
      worklist.push_back(entry.u);
    }
    if (ctx.owns(entry.v)) worklist.push_back(entry.v);
  }

  std::vector<std::vector<graph::vertex_id>> outbox(
      static_cast<std::size_t>(ctx.world()));
  std::vector<graph::vertex_id> next;
  for (std::uint32_t superstep = 0;; ++superstep) {
    const std::uint64_t sent_before = ctx.net.stats().bytes_sent;
    ctx.reset_scratch();
    const std::uint64_t visitors_before = metrics.visitors_processed;
    const std::uint64_t remote_before = metrics.messages_remote;
    const auto compute_t0 = clock::now();
    while (!worklist.empty()) {
      const graph::vertex_id vj = worklist.back();
      worklist.pop_back();
      if (in_tree[vj] != 0) {
        ++metrics.previsit_rejections;
        continue;
      }
      in_tree[vj] = 1;
      ++metrics.visitors_processed;
      if (vj == state.src[vj]) continue;  // reached the cell's seed
      const graph::vertex_id p = state.pred[vj];
      const auto w = ctx.graph.edge_weight(vj, p);
      if (!w.has_value()) {
        throw std::logic_error("tree walk-back crossed a missing edge");
      }
      local_es.push_back(
          graph::weighted_edge{std::min(p, vj), std::max(p, vj), *w});
      if (p == state.src[vj]) continue;  // next hop is the seed: edge covers it
      if (ctx.owns(p)) {
        ++metrics.messages_local;
        worklist.push_back(p);
      } else {
        ++metrics.messages_remote;
        outbox[static_cast<std::size_t>(ctx.part.owner(p))].push_back(p);
      }
    }

    ctx.scratch.compute_seconds = seconds_since(compute_t0);
    ctx.scratch.visitors = metrics.visitors_processed - visitors_before;
    ctx.scratch.remote_msgs = metrics.messages_remote - remote_before;

    const auto flush_t0 = clock::now();
    for (int peer = 0; peer < ctx.world(); ++peer) {
      auto& out = outbox[static_cast<std::size_t>(peer)];
      if (peer != ctx.rank()) {
        for (std::size_t begin = 0; begin < out.size();
             begin += k_batch_records) {
          const std::size_t end = std::min(begin + k_batch_records, out.size());
          ctx.send_data(peer, encode_walk_batch(std::span(out).subspan(
                                  begin, end - begin)));
        }
        ctx.report.bytes_modelled += out.size() * 8;
        ctx.net.send(peer, make_marker(superstep));
      }
      out.clear();
    }
    ctx.scratch.send_flush_seconds = seconds_since(flush_t0);
    next.clear();
    const auto recv_t0 = clock::now();
    for (int peer = 0; peer < ctx.world(); ++peer) {
      if (peer == ctx.rank()) continue;
      ctx.drain_until_marker(peer, [&](frame& f) {
        for (const graph::vertex_id v : decode_walk_batch(f)) {
          if (in_tree[v] == 0) next.push_back(v);
        }
      });
    }
    ctx.scratch.recv_wait_seconds = seconds_since(recv_t0);
    worklist.swap(next);
    ++metrics.rounds;
    const vote_decision decision = ctx.end_superstep(
        telemetry_phase::tree_walk, superstep, worklist.size(), UINT64_MAX,
        sent_before);
    if (decision.stop) break;
  }
  metrics.wall_seconds = seconds_since(t0);
  return metrics;
}

/// Final assembly: allgather the per-rank edge lists and canonically sort.
phase_metrics gather_tree(rank_ctx& ctx,
                                std::vector<graph::weighted_edge>& local_es,
                                std::vector<graph::weighted_edge>& tree) {
  phase_metrics metrics{};
  const auto t0 = clock::now();
  const std::uint64_t sent_before = ctx.net.stats().bytes_sent;
  ctx.reset_scratch();
  const auto flush_t0 = clock::now();
  for (int peer = 0; peer < ctx.world(); ++peer) {
    if (peer == ctx.rank()) continue;
    for (std::size_t begin = 0; begin < local_es.size();
         begin += k_batch_records) {
      const std::size_t end = std::min(begin + k_batch_records, local_es.size());
      ctx.send_data(peer, encode_edge_batch(std::span(local_es).subspan(
                              begin, end - begin)));
    }
  }
  ctx.report.bytes_modelled +=
      local_es.size() * 24 * static_cast<std::uint64_t>(ctx.world() - 1);
  ctx.scratch.send_flush_seconds = seconds_since(flush_t0);
  // This is the last exchange of the solve, so the sample must precede the
  // markers: per-peer FIFO then guarantees rank 0 absorbs it while draining
  // to our marker below. The cost is that gather samples carry no recv_wait
  // (the drain has not happened yet when they are emitted).
  ctx.emit_phase_telemetry(telemetry_phase::gather);
  for (int peer = 0; peer < ctx.world(); ++peer) {
    if (peer != ctx.rank()) ctx.net.send(peer, make_marker(0));
  }

  tree = std::move(local_es);
  for (int peer = 0; peer < ctx.world(); ++peer) {
    if (peer == ctx.rank()) continue;
    ctx.drain_until_marker(peer, [&](frame& f) {
      for (const graph::weighted_edge& e : decode_edge_batch(f)) {
        tree.push_back(e);
      }
    });
  }
  std::sort(tree.begin(), tree.end(),
            [](const graph::weighted_edge& a, const graph::weighted_edge& b) {
              return std::tuple{a.source, a.target} <
                     std::tuple{b.source, b.target};
            });
  net_superstep_sample sample;
  sample.superstep = 0;
  sample.bytes_measured = ctx.net.stats().bytes_sent - sent_before;
  sample.bytes_modelled = ctx.report.bytes_modelled - ctx.modelled_epoch;
  ctx.modelled_epoch = ctx.report.bytes_modelled;
  ctx.report.samples.push_back(sample);
  metrics.wall_seconds = seconds_since(t0);
  return metrics;
}

}  // namespace

core::steiner_result solve_rank(const graph::csr_graph& graph,
                                std::span<const graph::vertex_id> seeds,
                                const core::solver_config& config,
                                comm_backend& net, net_solve_report* report) {
  // Deterministic preprocessing — identical on every rank, so a rejected
  // seed list throws everywhere before any traffic flows.
  const std::vector<graph::vertex_id> seed_list =
      core::detail::dedup_seeds(graph, seeds);

  core::steiner_result result;
  result.num_seeds = seed_list.size();
  rank_ctx ctx(graph, config, net);

  if (seed_list.size() > 1) {
    core::steiner_state state(graph.num_vertices());
    {
      // Phase spans go to ctx.trace — non-null only on rank 0, which keeps
      // the shared loopback trace single-writer. This is what makes
      // distributed cold solves show up in /tracez and the slow-query log.
      core::detail::phase_span span(ctx.trace, phase_names::voronoi,
                                    config.costs);
      result.phases.phase(phase_names::voronoi) =
          run_voronoi(ctx, seed_list, state, result.growth);
      span.close(result.phases.phase(phase_names::voronoi));
    }

    auto& local_metrics = result.phases.phase(phase_names::local_min_edge);
    core::cross_edge_map local_en;
    {
      core::detail::phase_span span(ctx.trace, phase_names::local_min_edge,
                                    config.costs);
      sync_ghosts(ctx, state, local_metrics);
      phase_metrics scan = scan_local_min_edges(ctx, state, local_en);
      scan.messages_remote += local_metrics.messages_remote;
      local_metrics = scan;
      span.close(local_metrics);
    }
    if (config.budget != nullptr) config.budget->check();

    const runtime::communicator comm(ctx.world(), config.costs);
    core::cross_edge_map global_en;
    {
      core::detail::phase_span span(ctx.trace, phase_names::global_min_edge,
                                    config.costs);
      result.phases.phase(phase_names::global_min_edge) =
          reduce_global_en(ctx, local_en, global_en, comm);
      span.close(result.phases.phase(phase_names::global_min_edge));
    }
    result.distance_graph_edges = global_en.size();

    auto& mst_metrics = result.phases.phase(phase_names::mst);
    {
      core::detail::phase_span span(ctx.trace, phase_names::mst, config.costs);
      const auto mst_t0 = clock::now();
      const core::distance_graph_mst mst = core::compute_distance_graph_mst(
          global_en, seed_list, comm, mst_metrics);
      mst_metrics.wall_seconds = seconds_since(mst_t0);
      span.close(mst_metrics);
      result.spans_all_seeds = mst.spans_all_seeds;
      if (!mst.spans_all_seeds && !config.allow_disconnected_seeds) {
        throw std::runtime_error("seeds are not mutually reachable");
      }

      auto& prune_metrics = result.phases.phase(phase_names::pruning);
      core::detail::phase_span prune_span(ctx.trace, phase_names::pruning,
                                          config.costs);
      const auto prune_t0 = clock::now();
      {
        const std::set<core::seed_pair> keep(mst.mst_pairs.begin(),
                                             mst.mst_pairs.end());
        std::erase_if(global_en, [&](const auto& kv) {
          return keep.find(kv.first) == keep.end();
        });
        constexpr std::uint64_t entry_bytes =
            sizeof(core::seed_pair) + sizeof(core::cross_edge_entry);
        comm.charge_collective(global_en.size() * entry_bytes, prune_metrics);
      }
      prune_metrics.wall_seconds = seconds_since(prune_t0);
      prune_span.close(prune_metrics);
    }
    if (config.budget != nullptr) config.budget->check();

    std::vector<graph::weighted_edge> local_es;
    {
      core::detail::phase_span span(ctx.trace, phase_names::tree_edge,
                                    config.costs);
      result.phases.phase(phase_names::tree_edge) =
          run_tree_edges(ctx, global_en, state, local_es);

      phase_metrics gather =
          gather_tree(ctx, local_es, result.tree_edges);
      result.phases.phase(phase_names::tree_edge).merge(gather);
      span.close(result.phases.phase(phase_names::tree_edge));
    }

    for (const graph::weighted_edge& e : result.tree_edges) {
      result.total_distance += e.weight;
    }

    result.memory.graph_bytes = graph.memory_bytes();
    result.memory.state_bytes =
        state.memory_bytes() + graph.num_vertices() * sizeof(std::uint8_t);
    result.memory.queue_peak_bytes =
        result.phases.phase(phase_names::voronoi).queue_peak_bytes;
    result.memory.distance_graph_bytes =
        global_en.size() *
        (sizeof(core::seed_pair) + sizeof(core::cross_edge_entry));
    result.memory.collective_buffer_bytes = comm.peak_buffer_bytes();
    result.memory.tree_bytes =
        result.tree_edges.size() * sizeof(graph::weighted_edge);

    if (config.validate) {
      const core::validation_result check =
          core::validate_steiner_tree(graph, seed_list, result.tree_edges);
      if (!check) {
        throw std::runtime_error("distributed solve failed validation: " +
                                 check.error);
      }
    }
  } else {
    result.memory.graph_bytes = graph.memory_bytes();
  }

  ctx.report.vote_rounds = ctx.vote.rounds();
  ctx.report.stats = net.stats();
  if (ctx.telemetry_on && ctx.rank() == 0) {
    ctx.report.cluster =
        merge_cluster_samples(ctx.world(), std::move(ctx.cluster_rx));
  }
  if (report != nullptr) *report = std::move(ctx.report);
  return result;
}

core::steiner_result solve_loopback(
    const graph::csr_graph& graph, std::span<const graph::vertex_id> seeds,
    const core::solver_config& config, int world,
    std::vector<net_solve_report>* reports) {
  if (world <= 0) {
    throw std::invalid_argument("solve_loopback: world must be positive");
  }
  loopback_mesh mesh(world);
  std::vector<core::steiner_result> results(static_cast<std::size_t>(world));
  std::vector<net_solve_report> rank_reports(static_cast<std::size_t>(world));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(world));

  const auto run = [&](int rank) noexcept {
    try {
      results[static_cast<std::size_t>(rank)] =
          solve_rank(graph, seeds, config, mesh.endpoint(rank),
                     &rank_reports[static_cast<std::size_t>(rank)]);
    } catch (...) {
      errors[static_cast<std::size_t>(rank)] = std::current_exception();
      mesh.close_all();  // unblock peers so every rank unwinds
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(world - 1));
  for (int rank = 1; rank < world; ++rank) {
    threads.emplace_back(run, rank);
  }
  run(0);
  for (std::thread& t : threads) t.join();

  // Prefer the root cause over the wire_errors peers see once the mesh is
  // torn down, and cancellation over everything (the service maps it).
  std::exception_ptr first;
  for (const std::exception_ptr& e : errors) {
    if (!e) continue;
    if (!first) first = e;
    try {
      std::rethrow_exception(e);
    } catch (const util::operation_cancelled&) {
      first = e;
      break;
    } catch (const wire_error&) {
      // keep looking for a more specific cause
    } catch (...) {
      first = e;
    }
  }
  if (first) std::rethrow_exception(first);

  if (reports != nullptr) *reports = std::move(rank_reports);
  return std::move(results.front());
}

}  // namespace dsteiner::runtime::net
