// The transport abstraction behind the distributed solver.
//
// A `comm_backend` is one rank's endpoint into a fully-connected mesh of
// `world_size()` ranks: point-to-point typed frames with per-peer FIFO
// ordering, plus measured traffic counters. Everything above it — superstep
// batching, markers, the two-phase termination vote, ghost sync, collectives
// — is built from these two primitives in termination.hpp / dist_solver.cpp,
// so the algorithm code is byte-for-byte identical over the in-process
// loopback mesh (the default; see loopback_backend.hpp) and real TCP sockets
// between processes (tcp_backend.hpp). That is what makes the
// loopback-vs-TCP bit-identity tests meaningful: only the transport varies.
//
// Ordering contract: frames from one peer arrive in send order; frames from
// different peers interleave arbitrarily. Backends are single-rank objects —
// exactly one thread drives send()/recv() on a given instance.
#pragma once

#include <cstdint>

#include "runtime/net/frame.hpp"

namespace dsteiner::runtime::net {

/// Measured traffic through one rank's endpoint — the real-bytes side of the
/// modelled-vs-measured comparison exported to /metrics. Counted on the
/// wire-format boundary (header + payload per frame), so loopback and TCP
/// report the same numbers for the same solve.
struct net_stats {
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
};

class comm_backend {
 public:
  virtual ~comm_backend() = default;

  [[nodiscard]] virtual int rank() const noexcept = 0;
  [[nodiscard]] virtual int world_size() const noexcept = 0;

  /// Enqueues one frame to peer `to` (!= rank()). Throws wire_error if the
  /// mesh is closed.
  virtual void send(int to, const frame& f) = 0;

  /// Blocks for the next frame from any peer (per-peer FIFO order). Returns
  /// false when the mesh has been closed and no frames remain.
  virtual bool recv(int& from, frame& out) = 0;

  [[nodiscard]] virtual net_stats stats() const noexcept = 0;

  /// Tears the mesh down; pending and future recv() calls return false and
  /// send() throws. Idempotent.
  virtual void close() = 0;
};

}  // namespace dsteiner::runtime::net
