#include "runtime/net/termination.hpp"

#include <algorithm>
#include <string>

namespace dsteiner::runtime::net {

peer_channels::peer_channels(comm_backend& net)
    : net_(net),
      pending_(static_cast<std::size_t>(net.world_size())) {}

frame peer_channels::next(int from) {
  auto& queue = pending_[static_cast<std::size_t>(from)];
  while (queue.empty()) {
    int src = -1;
    frame f;
    if (!net_.recv(src, f)) {
      throw wire_error("mesh closed while waiting for rank " +
                       std::to_string(from));
    }
    if (f.type == frame_type::telemetry) {
      if (telemetry_sink_) telemetry_sink_(src, f);
      continue;  // never parked: invisible to the protocol paths
    }
    pending_[static_cast<std::size_t>(src)].push_back(std::move(f));
  }
  frame out = std::move(queue.front());
  queue.pop_front();
  return out;
}

frame peer_channels::expect(int from, frame_type type) {
  frame f = next(from);
  if (f.type != type) {
    throw wire_error(std::string("expected ") + to_string(type) +
                     " from rank " + std::to_string(from) + ", got " +
                     to_string(f.type));
  }
  return f;
}

std::uint32_t peer_channels::until_marker(
    int from, frame_type marker_type, const std::function<void(frame&)>& fn) {
  for (;;) {
    frame f = next(from);
    if (f.type == marker_type) return decode_marker(f);
    fn(f);
  }
}

termination_vote::termination_vote(peer_channels& chans) : chans_(chans) {}

bucket_vote termination_vote::fold_once(const bucket_vote& mine,
                                        bool confirm) {
  ++rounds_;
  comm_backend& net = chans_.backend();
  const frame f = encode_vote(mine, confirm);
  const frame_type want =
      confirm ? frame_type::vote_confirm : frame_type::vote;
  for (int peer = 0; peer < net.world_size(); ++peer) {
    if (peer != net.rank()) net.send(peer, f);
  }
  bucket_vote folded = mine;
  for (int peer = 0; peer < net.world_size(); ++peer) {
    if (peer == net.rank()) continue;
    const bucket_vote theirs = decode_vote(chans_.expect(peer, want));
    if (theirs.superstep != mine.superstep) {
      throw wire_error("vote superstep mismatch: mine " +
                       std::to_string(mine.superstep) + ", rank " +
                       std::to_string(peer) + " sent " +
                       std::to_string(theirs.superstep));
    }
    folded.outstanding += theirs.outstanding;
    folded.min_bucket = std::min(folded.min_bucket, theirs.min_bucket);
    folded.cancel = folded.cancel | theirs.cancel;
  }
  return folded;
}

vote_decision termination_vote::round(std::uint64_t outstanding, bool cancel,
                                      std::uint64_t min_bucket,
                                      std::uint32_t superstep) {
  bucket_vote mine;
  mine.outstanding = outstanding;
  mine.min_bucket = min_bucket;
  mine.superstep = superstep;
  mine.cancel = cancel ? 1 : 0;

  const bucket_vote proposed = fold_once(mine, /*confirm=*/false);
  vote_decision decision;
  decision.cancel = proposed.cancel != 0;
  decision.min_bucket = proposed.min_bucket;
  if (proposed.cancel != 0) {
    decision.stop = true;  // cancellation stops everyone immediately
    return decision;
  }
  if (proposed.outstanding != 0) return decision;

  // Everyone proposed idle. Between a rank's vote and now no new data frames
  // can have been injected — sends happen before the vote within a superstep
  // and per-peer FIFO means any such frame would precede the vote we already
  // consumed. The confirm round re-affirms under that quiesced state and
  // keeps all ranks in lockstep on the same final superstep count.
  const bucket_vote confirmed = fold_once(mine, /*confirm=*/true);
  decision.cancel = confirmed.cancel != 0;
  decision.min_bucket = confirmed.min_bucket;
  decision.stop = confirmed.cancel != 0 || confirmed.outstanding == 0;
  return decision;
}

}  // namespace dsteiner::runtime::net
