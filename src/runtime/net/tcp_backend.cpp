#include "runtime/net/tcp_backend.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>

namespace dsteiner::runtime::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// Writes the whole buffer or throws; short writes are retried.
void write_all(int fd, const std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("tcp send");
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

/// Reads exactly `len` bytes. Returns false on clean EOF at a frame boundary
/// (len bytes pending = 0 read so far); mid-read EOF is a wire error.
bool read_exact(int fd, std::uint8_t* data, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, data + got, len - got, MSG_WAITALL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("tcp recv");
    }
    if (n == 0) {
      if (got == 0) return false;
      throw wire_error("peer closed mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

/// Sends one frame (header + payload) as a single buffer so small frames
/// (markers, votes) leave in one segment under TCP_NODELAY.
void send_frame(int fd, const frame& f) {
  const std::vector<std::uint8_t> bytes = encode_frame(f);
  write_all(fd, bytes.data(), bytes.size());
}

/// Reads one whole frame; returns false on clean EOF before the header.
bool read_frame(int fd, frame& out) {
  std::uint8_t header_bytes[k_header_bytes];
  if (!read_exact(fd, header_bytes, k_header_bytes)) return false;
  const frame_header header = decode_header(header_bytes);
  out.type = header.type;
  out.payload.resize(header.payload_bytes);
  if (header.payload_bytes > 0 &&
      !read_exact(fd, out.payload.data(), header.payload_bytes)) {
    throw wire_error("peer closed mid-frame");
  }
  return true;
}

}  // namespace

tcp_backend::tcp_backend(const tcp_backend_config& config) : config_(config) {
  if (config.world <= 0 || config.rank < 0 || config.rank >= config.world) {
    throw std::invalid_argument("tcp_backend: rank/world out of range");
  }
  peer_fd_.assign(static_cast<std::size_t>(config.world), -1);
  if (config.world == 1) return;  // degenerate: no peers, nothing to connect

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(config.connect_timeout_ms);
  int listen_fd = -1;
  try {
    // Listen first so every higher rank's dial finds us without a race.
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd < 0) throw_errno("tcp socket");
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in self = loopback_addr(
        static_cast<std::uint16_t>(config.base_port + config.rank));
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&self), sizeof(self)) <
        0) {
      throw_errno("tcp bind port " +
                  std::to_string(config.base_port + config.rank));
    }
    if (::listen(listen_fd, config.world) < 0) throw_errno("tcp listen");

    // Dial every lower rank, retrying while its listener comes up.
    for (int peer = 0; peer < config.rank; ++peer) {
      for (;;) {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) throw_errno("tcp socket");
        sockaddr_in addr = loopback_addr(
            static_cast<std::uint16_t>(config.base_port + peer));
        if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
            0) {
          set_nodelay(fd);
          send_frame(fd, encode_hello(config.rank, config.world));
          peer_fd_[static_cast<std::size_t>(peer)] = fd;
          break;
        }
        ::close(fd);
        if (std::chrono::steady_clock::now() >= deadline) {
          throw std::runtime_error("tcp connect to rank " +
                                   std::to_string(peer) + " timed out");
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    }

    // Accept one connection from every higher rank; the hello frame tells us
    // which rank dialled (accept order is scheduling-dependent).
    for (int pending = config.world - 1 - config.rank; pending > 0;
         --pending) {
      pollfd p{listen_fd, POLLIN, 0};
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0 ||
          ::poll(&p, 1, static_cast<int>(left.count())) <= 0) {
        throw std::runtime_error("tcp accept timed out waiting for " +
                                 std::to_string(pending) + " peer(s)");
      }
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) throw_errno("tcp accept");
      set_nodelay(fd);
      frame hello;
      if (!read_frame(fd, hello)) {
        ::close(fd);
        throw wire_error("peer closed before hello");
      }
      int peer_rank = 0;
      int peer_world = 0;
      decode_hello(hello, peer_rank, peer_world);
      if (peer_world != config.world || peer_rank <= config.rank ||
          peer_fd_[static_cast<std::size_t>(peer_rank)] != -1) {
        ::close(fd);
        throw wire_error("hello from unexpected rank " +
                         std::to_string(peer_rank));
      }
      peer_fd_[static_cast<std::size_t>(peer_rank)] = fd;
    }

    ::close(listen_fd);
  } catch (...) {
    if (listen_fd >= 0) ::close(listen_fd);
    close_all();
    throw;
  }
}

tcp_backend::~tcp_backend() { close_all(); }

int tcp_backend::fd_of(int peer) const {
  if (peer < 0 || peer >= config_.world || peer == config_.rank) {
    throw std::invalid_argument("tcp_backend: bad peer rank");
  }
  return peer_fd_[static_cast<std::size_t>(peer)];
}

void tcp_backend::send(int to, const frame& f) {
  const int fd = fd_of(to);
  if (closed_ || fd < 0) throw wire_error("tcp mesh closed");
  // Non-blocking writes with receive draining while stalled: two ranks
  // flushing large superstep batches at each other would otherwise deadlock
  // once both kernel send buffers fill (neither reads until its write
  // completes). When our write would block we read whatever peers have
  // ready into rx_queue_, which frees their send buffers and ours.
  const std::vector<std::uint8_t> bytes = encode_frame(f);
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      throw_errno("tcp send");
    }
    // Crucially this drains the destination peer too: when both sides of a
    // link flush at each other, reading the peer's frames is the only thing
    // that empties its send buffer and lets it get back to reading ours.
    drain_ready_peers();
    pollfd p{fd, POLLOUT, 0};
    if (::poll(&p, 1, 50) < 0 && errno != EINTR) throw_errno("tcp poll");
  }
  stats_.bytes_sent += wire_bytes(f);
  ++stats_.frames_sent;
}

/// Reads one frame from every peer that has data pending, without blocking
/// on peers that do not. A peer that is POLLIN-ready has at least started a
/// frame; the blocking remainder-read completes because that peer's data is
/// already in flight towards us.
void tcp_backend::drain_ready_peers() {
  std::vector<pollfd> fds;
  std::vector<int> ranks;
  for (std::size_t i = 0; i < peer_fd_.size(); ++i) {
    if (peer_fd_[i] >= 0) {
      fds.push_back(pollfd{peer_fd_[i], POLLIN, 0});
      ranks.push_back(static_cast<int>(i));
    }
  }
  if (fds.empty()) return;
  if (::poll(fds.data(), fds.size(), 0) <= 0) return;
  for (std::size_t i = 0; i < fds.size(); ++i) {
    if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    frame f;
    if (read_frame(fds[i].fd, f)) {
      stats_.bytes_received += wire_bytes(f);
      ++stats_.frames_received;
      rx_queue_.emplace_back(ranks[i], std::move(f));
    } else {
      ::close(fds[i].fd);
      peer_fd_[static_cast<std::size_t>(ranks[i])] = -1;
    }
  }
}

bool tcp_backend::recv(int& from, frame& out) {
  if (!rx_queue_.empty()) {
    from = rx_queue_.front().first;
    out = std::move(rx_queue_.front().second);
    rx_queue_.pop_front();
    return true;
  }
  if (closed_) return false;
  std::vector<pollfd> fds;
  std::vector<int> ranks;
  fds.reserve(peer_fd_.size());
  for (std::size_t i = 0; i < peer_fd_.size(); ++i) {
    if (peer_fd_[i] >= 0) {
      fds.push_back(pollfd{peer_fd_[i], POLLIN, 0});
      ranks.push_back(static_cast<int>(i));
    }
  }
  while (!fds.empty()) {
    const int n = ::poll(fds.data(), fds.size(), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("tcp poll");
    }
    // Round-robin over ready peers so one busy stream cannot starve others.
    const std::size_t count = fds.size();
    for (std::size_t step = 0; step < count; ++step) {
      const std::size_t i =
          (static_cast<std::size_t>(next_peer_) + step) % count;
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      next_peer_ = static_cast<int>((i + 1) % count);
      if (read_frame(fds[i].fd, out)) {
        from = ranks[i];
        stats_.bytes_received += wire_bytes(out);
        ++stats_.frames_received;
        return true;
      }
      // Clean EOF from this peer: drop it and keep serving the rest.
      ::close(fds[i].fd);
      peer_fd_[static_cast<std::size_t>(ranks[i])] = -1;
      fds.erase(fds.begin() + static_cast<std::ptrdiff_t>(i));
      ranks.erase(ranks.begin() + static_cast<std::ptrdiff_t>(i));
      break;  // pollfd indices shifted; re-poll
    }
  }
  return false;  // every peer has disconnected
}

void tcp_backend::close() {
  closed_ = true;
  close_all();
}

void tcp_backend::close_all() noexcept {
  for (int& fd : peer_fd_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

}  // namespace dsteiner::runtime::net
