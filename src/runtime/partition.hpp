// Vertex partitioning for the simulated distributed runtime.
//
// The paper's scale-out design assigns each graph partition to an MPI
// process; "partitions have approximately equal share of vertices" (§IV).
// HavoqGT additionally load-balances scale-free graphs by distributing the
// edges of high-degree vertices across partitions (vertex delegates); the
// delegate mechanics live in dist_graph.hpp on top of this vertex->rank map.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "graph/types.hpp"
#include "util/hash.hpp"

namespace dsteiner::runtime {

enum class partition_scheme {
  block,  ///< contiguous vertex ranges (locality-preserving, imbalance-prone)
  hash,   ///< hashed assignment (HavoqGT-style, degree-agnostic balance)
};

/// Maps vertices to ranks. Cheap value type copied freely into kernels.
class partitioner {
 public:
  partitioner() = default;

  partitioner(graph::vertex_id num_vertices, int num_ranks,
              partition_scheme scheme = partition_scheme::hash)
      : num_vertices_(num_vertices), num_ranks_(num_ranks), scheme_(scheme) {
    if (num_ranks <= 0) throw std::invalid_argument("partitioner: ranks must be > 0");
    block_size_ = num_ranks_ > 0
                      ? (num_vertices_ + static_cast<graph::vertex_id>(num_ranks_) - 1) /
                            static_cast<graph::vertex_id>(num_ranks_)
                      : 1;
    if (block_size_ == 0) block_size_ = 1;
  }

  [[nodiscard]] int num_ranks() const noexcept { return num_ranks_; }
  [[nodiscard]] graph::vertex_id num_vertices() const noexcept { return num_vertices_; }
  [[nodiscard]] partition_scheme scheme() const noexcept { return scheme_; }

  [[nodiscard]] int owner(graph::vertex_id v) const noexcept {
    if (scheme_ == partition_scheme::block) {
      return static_cast<int>(v / block_size_);
    }
    return static_cast<int>(util::mix64(v) % static_cast<std::uint64_t>(num_ranks_));
  }

 private:
  graph::vertex_id num_vertices_ = 0;
  int num_ranks_ = 1;
  partition_scheme scheme_ = partition_scheme::hash;
  graph::vertex_id block_size_ = 1;
};

}  // namespace dsteiner::runtime
