// Execution configuration shared by the visitor engines.
//
// Split out of visitor_engine.hpp so the threaded backend
// (runtime/parallel/thread_engine.hpp) and the cooperative single-thread
// engine can both consume the same configuration without a circular include:
// run_visitors() dispatches on execution_mode at the call site.
#pragma once

#include <cstddef>
#include <cstdint>

#include "runtime/mailbox.hpp"
#include "runtime/perf_model.hpp"
#include "util/cancellation.hpp"

namespace dsteiner::obs {
class engine_probe;
}  // namespace dsteiner::obs

namespace dsteiner::runtime {

namespace parallel {
class worker_pool;
}  // namespace parallel

enum class execution_mode {
  async,  ///< immediate delivery: communication overlaps computation
  bsp,    ///< deliveries held until the round boundary (superstep model)
  /// Real per-rank worker threads with lock-free SPSC channels between ranks
  /// and a counting superstep barrier (runtime/parallel/). A cold solve
  /// scales with cores; output is bit-identical to the other modes.
  parallel_threads,
};

/// How visitors are ordered inside a phase-1 run.
enum class growth_mode {
  /// Strict lowest-priority-first order (the paper's optimization). The
  /// schedule — and therefore every metric — is bit-identical across
  /// engines and thread counts. Default everywhere.
  strict_order,
  /// Delta-stepping buckets: visitors are grouped into buckets of width
  /// `bucket_delta` and a whole bucket is drained per round/superstep, in
  /// any order inside the bucket. The output *tree* is still identical (the
  /// lexicographic (distance, seed, pred) admission has a unique fixed
  /// point) but the schedule, and so round counts and message tallies, are
  /// not. Fewer barriers per solve — the cold-solve p50 lever.
  bucketed,
};

struct engine_config {
  queue_policy policy = queue_policy::priority;
  execution_mode mode = execution_mode::async;
  std::size_t batch_size = 64;  ///< visitors a rank drains per round
  cost_model costs{};

  /// parallel_threads only: worker threads backing the per-rank execution.
  /// 0 = one per hardware thread, capped at the rank count. Ranks are striped
  /// over workers (rank r runs on worker r % num_threads), so any thread
  /// count between 1 and num_ranks is valid.
  std::size_t num_threads = 0;

  /// Phase-1 scheduling: strict priority order (default) or delta-stepping
  /// buckets. Only the solver's phase-1 run ever sets `bucketed`; all other
  /// phases are strict by construction.
  growth_mode growth = growth_mode::strict_order;

  /// Bucket width for `growth_mode::bucketed`. Must be > 0 when bucketed
  /// (the solver resolves 0 to graph::heuristic_delta before the run).
  std::uint64_t bucket_delta = 0;

  /// bucketed only: vertices with degree above this threshold scatter via
  /// edge-tile work items spread round-robin over ranks instead of one
  /// monolithic visit, so power-law hubs cannot serialize a bucket.
  /// 0 disables tiling.
  std::uint64_t tile_threshold = 0;

  /// bucketed only: buckets whose start priority exceeds this bound cannot
  /// improve any vertex (landmark-oracle upper bounds) and are dropped
  /// wholesale, ending the run early. UINT64_MAX disables the prune.
  std::uint64_t priority_limit = UINT64_MAX;

  /// parallel_threads only: borrowed persistent worker pool. When null the
  /// engine spins up (and joins) a transient pool for the run; the solver
  /// creates one pool per solve so all phases reuse the same threads.
  parallel::worker_pool* pool = nullptr;

  /// Cooperative cancellation/deadline checkpoint, polled once per round
  /// (cooperative engine) or superstep (threaded engine; the vote is folded
  /// through the barrier so every worker stops at the same superstep). Null
  /// disables the poll. Must outlive the run.
  const util::run_budget* budget = nullptr;

  /// Per-superstep telemetry sink (query-scoped tracing, src/obs/). Workers
  /// record into probe lane w (single-writer); the cooperative engine uses
  /// lane 0. Null (the default) disables sampling entirely — the engines
  /// never read from the probe, so execution and output are identical either
  /// way. Must outlive the run. Same hash-exclusion rule as `budget`.
  obs::engine_probe* probe = nullptr;
};

}  // namespace dsteiner::runtime
