#include "runtime/comm.hpp"

#include <bit>
#include <cmath>

namespace dsteiner::runtime {

void communicator::charge_collective(std::uint64_t bytes,
                                     phase_metrics& metrics) const {
  ++metrics.collective_calls;
  metrics.collective_bytes += bytes;
  const double log_ranks =
      num_ranks_ > 1 ? std::log2(static_cast<double>(num_ranks_)) : 1.0;
  metrics.sim_units += costs_.collective_alpha * log_ranks +
                       costs_.collective_per_byte * static_cast<double>(bytes);
}

}  // namespace dsteiner::runtime
