#include "runtime/partition.hpp"

// partitioner is header-only; this translation unit exists so the build
// graph mirrors one compiled object per runtime module.
