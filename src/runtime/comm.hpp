// Collective communication over the simulated ranks.
//
// The distributed algorithm uses MPI collectives in three places (Alg. 3/5):
// MPI_Allreduce(MPI_MIN) on cross-cell edge distances, a second Allreduce on
// source-vertex ids for tie-breaking, and result gathering. This module
// reproduces those semantics over per-rank in-process buffers, charges an
// alpha-beta (latency + bandwidth) cost to the simulated clock, and supports
// the *chunked* collective mode the paper describes in §V-F ("multiple
// collective operations on smaller chunks, e.g., 500K or 1M items per chunk"
// trading runtime for memory).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "runtime/parallel/worker_pool.hpp"
#include "runtime/perf_model.hpp"

namespace dsteiner::runtime {

class communicator {
 public:
  /// `pool`, when non-null, parallelizes the replication fan-out of
  /// allreduce_map across its workers (the solver lends its per-solve pool;
  /// collectives run between engine phases, so the pool is idle then). Must
  /// outlive the communicator. Null keeps every path on the calling thread.
  explicit communicator(int num_ranks, cost_model costs,
                        parallel::worker_pool* pool = nullptr)
      : num_ranks_(num_ranks), costs_(costs), pool_(pool) {}

  [[nodiscard]] int num_ranks() const noexcept { return num_ranks_; }
  [[nodiscard]] const cost_model& costs() const noexcept { return costs_; }

  /// Accounting for one collective call moving `bytes` per rank.
  void charge_collective(std::uint64_t bytes, phase_metrics& metrics) const;

  /// Peak per-rank collective buffer observed (Fig. 8 memory accounting).
  [[nodiscard]] std::uint64_t peak_buffer_bytes() const noexcept {
    return peak_buffer_bytes_;
  }
  void note_buffer_bytes(std::uint64_t bytes) const noexcept {
    if (bytes > peak_buffer_bytes_) peak_buffer_bytes_ = bytes;
  }
  void reset_peak_buffer() const noexcept { peak_buffer_bytes_ = 0; }

  /// Element-wise allreduce across per-rank dense vectors. All vectors must
  /// have identical length; on return every rank holds the reduction.
  /// `chunk_items == 0` performs a single monolithic collective; otherwise
  /// the reduction proceeds in chunks of that many items (smaller peak
  /// buffer, more alpha charges).
  template <typename T, typename Op>
  void allreduce(std::vector<std::vector<T>>& per_rank, Op op,
                 phase_metrics& metrics, std::size_t chunk_items = 0) const {
    if (per_rank.empty() || per_rank.front().empty()) return;
    const std::size_t items = per_rank.front().size();
    const std::size_t chunk = chunk_items == 0 ? items : chunk_items;
    for (std::size_t begin = 0; begin < items; begin += chunk) {
      const std::size_t end = begin + chunk < items ? begin + chunk : items;
      for (std::size_t i = begin; i < end; ++i) {
        T reduced = per_rank.front()[i];
        for (int r = 1; r < num_ranks_; ++r) reduced = op(reduced, per_rank[r][i]);
        for (int r = 0; r < num_ranks_; ++r) per_rank[r][i] = reduced;
      }
      const std::uint64_t bytes = (end - begin) * sizeof(T);
      charge_collective(bytes, metrics);
      note_buffer_bytes(bytes);
    }
  }

  /// Allreduce for sparse maps: the global result is the key-union with
  /// `value_min(a, b)` resolving duplicates; every rank receives a copy.
  /// This is the sparse realisation of Alg. 5's Allreduce over EN.
  ///
  /// Accounting mirrors the dense `allreduce` path: the payload is the merged
  /// (reduced) map each rank ends up holding, charged per chunk with the
  /// alpha-beta model and recorded as the per-chunk collective buffer.
  /// `chunk_items == 0` is one monolithic collective over all merged entries.
  template <typename Key, typename Value, typename Hash, typename ValueMin>
  void allreduce_map(
      std::vector<std::unordered_map<Key, Value, Hash>>& per_rank,
      ValueMin value_min, phase_metrics& metrics,
      std::size_t chunk_items = 0) const {
    std::unordered_map<Key, Value, Hash> merged;
    for (const auto& local : per_rank) {
      for (const auto& [key, value] : local) {
        const auto [it, inserted] = merged.emplace(key, value);
        if (!inserted) it->second = value_min(it->second, value);
      }
    }
    constexpr std::uint64_t entry_bytes = sizeof(Key) + sizeof(Value);
    const std::size_t items = merged.size();
    const std::size_t chunk = chunk_items == 0 ? items : chunk_items;
    for (std::size_t begin = 0; begin < items; begin += chunk) {
      const std::size_t end = begin + chunk < items ? begin + chunk : items;
      const std::uint64_t bytes = (end - begin) * entry_bytes;
      charge_collective(bytes, metrics);
      note_buffer_bytes(bytes);
    }
    // Replicating the merged map to every rank dominates this collective at
    // high rank counts (num_ranks full-map copies) and is embarrassingly
    // parallel: every copy reads the same finished source. The merge pass
    // above deliberately stays on the submitting thread — its insertion
    // order fixes the merged map's iteration order, which downstream phases
    // consume (G'1 construction, tree-edge seeding), so re-ordering it
    // would break bit-identity across engines and thread counts. Copies of
    // one fixed source carry no such hazard.
    if (pool_ != nullptr && pool_->size() > 1 && per_rank.size() > 1 &&
        merged.size() >= 1024) {
      // Concurrent whole-map replica copies hold the full merged payload
      // live at once, so the §V-F chunked bound above does not describe this
      // path's real peak — charge the full map as the collective buffer.
      note_buffer_bytes(items * entry_bytes);
      const std::size_t stride = pool_->size();
      auto* ranks = &per_rank;
      const auto* source = &merged;
      pool_->run([ranks, source, stride](std::size_t w) {
        for (std::size_t r = w; r < ranks->size(); r += stride) {
          (*ranks)[r] = *source;
        }
      });
    } else {
      for (auto& local : per_rank) local = merged;
    }
  }

  /// Allgather: concatenation of all per-rank vectors (rank order).
  template <typename T>
  [[nodiscard]] std::vector<T> allgather(
      const std::vector<std::vector<T>>& per_rank, phase_metrics& metrics) const {
    std::vector<T> out;
    std::uint64_t bytes = 0;
    for (const auto& local : per_rank) {
      out.insert(out.end(), local.begin(), local.end());
      bytes += local.size() * sizeof(T);
    }
    charge_collective(bytes, metrics);
    note_buffer_bytes(bytes);
    return out;
  }

 private:
  int num_ranks_;
  cost_model costs_;
  parallel::worker_pool* pool_ = nullptr;  ///< optional, for allreduce_map fan-out
  mutable std::uint64_t peak_buffer_bytes_ = 0;
};

}  // namespace dsteiner::runtime
